#ifndef SLFE_NET_NET_SERVER_H_
#define SLFE_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "slfe/common/status.h"
#include "slfe/service/command_session.h"
#include "slfe/service/job_service.h"

namespace slfe::net {

/// Worker->loop completion handoff state; defined in net_server.cc.
struct NetServerCompletionHub;

struct NetServerOptions {
  /// Bind address. The default keeps a development daemon off the open
  /// network; deployments opt into 0.0.0.0 explicitly.
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (read the chosen port back via port() after Start —
  /// the test harness's path).
  uint16_t port = 0;
  /// tenant -> token. Non-empty: every connection must open with a valid
  /// `auth <tenant> <token>` line, and is then bound to that tenant —
  /// its submits/mutations may name no other. Empty: no handshake
  /// required; a leading `auth <tenant>` line still binds voluntarily.
  std::map<std::string, std::string> auth_tokens;
  /// Connections admitted concurrently; excess accepts are turned away
  /// with a terminated reject line and counted as dropped.
  size_t max_connections = 256;
  /// A line (or un-newlined prefix) longer than this drops the connection
  /// — bounded memory per peer, the same contract as the bounded queue.
  size_t max_line_bytes = 1 << 20;
  /// Pending unread output beyond this drops the connection (a peer that
  /// stopped reading must not grow the daemon's heap unboundedly).
  size_t max_outbuf_bytes = 8u << 20;
  /// `shutdown` from a connection stops the whole daemon (drain first).
  /// Off by default: a tenant must not be able to stop the service.
  bool allow_shutdown = false;
  /// Dispatcher knobs shared with the stdin driver (scale divisor, echo).
  /// streaming/bound_tenant/allow_shutdown are overwritten per connection.
  service::CommandSession::Options session;
  /// Invoked on the loop thread at the top of every Serve() iteration.
  /// Paired with Wake() this is how the daemon services SIGUSR1 telemetry
  /// dumps without a second thread: the handler raises a flag and wakes
  /// the loop, the next tick renders the dump. Must be cheap and must not
  /// call back into the server.
  std::function<void()> on_loop_tick;
};

/// The TCP front end: one epoll event loop accepting many concurrent
/// connections, each speaking the newline job protocol through its own
/// streaming CommandSession. Requests pipeline — a submit never blocks the
/// connection — and completion lines are streamed back as workers finish
/// jobs (tagged `req=K` in this connection's submission order), not only
/// at `wait`. `wait` is a barrier: dispatch of the lines behind it pauses
/// until every prior submission on that connection has streamed its
/// result, then `done ...` is emitted — so a batch script's `stats` still
/// reads in the state it expects. Job execution stays on the JobService
/// worker pool; workers hand completions back to the loop through an
/// eventfd, so the loop thread is the only one touching sockets.
///
/// Lifecycle: Start() binds + listens (port() is then valid); Serve()
/// runs the loop until Stop() (any thread) or an authorized `shutdown`
/// command; both drain outstanding jobs on live connections before
/// closing them. The destructor closes every fd.
class NetServer {
 public:
  NetServer(service::JobService& service, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Socket/bind/listen/epoll setup. On OK, port() returns the bound
  /// (possibly ephemeral) port and Serve() may be called.
  Status Start();

  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread. Returns 0 on a clean stop,
  /// 1 when any connection saw a rejected line or failed job (the same
  /// health contract as the stdin driver's exit code).
  int Serve();

  /// Thread-safe: wakes the loop and stops it after draining outstanding
  /// jobs on live connections.
  void Stop();

  /// Async-signal-safe: wakes the loop without stopping it, so the next
  /// iteration's on_loop_tick runs promptly. A signal handler that raises
  /// a flag for the tick must call this — process-directed signals are
  /// delivered to an arbitrary thread, so epoll_wait usually keeps
  /// sleeping through them.
  void Wake();

 private:
  struct Connection;

  void HandleAccept();
  void HandleReadable(Connection& conn);
  /// The per-connection state machine: releases drained barriers (`done`),
  /// dispatches buffered lines until the next barrier, flushes writes,
  /// and finishes a pending close. Safe against re-entry and against the
  /// connection disappearing mid-dispatch (looked up by id each step).
  void PumpConnection(uint64_t id);
  void DispatchLine(Connection& conn, const std::string& line);
  /// First-line handling while the session is null: validates `auth`
  /// against the token map (binding the tenant) or, with no auth
  /// configured, creates an unbound session. Returns false when the
  /// handshake dropped the connection.
  bool HandleHandshake(Connection& conn, const std::string& line);
  void MakeSession(Connection& conn, const std::string& bound_tenant);
  /// Returns false when the connection was closed by a write error.
  bool FlushWrites(Connection& conn);
  void Output(Connection& conn, std::string line);
  void UpdateEpoll(Connection& conn, uint32_t mask);
  void CloseConnection(uint64_t id, bool dropped);
  void BeginShutdown();
  /// Loop-thread side of the worker handoff: drains the hub and streams
  /// each completion to its connection.
  void DrainCompletions();

  service::JobService& service_;
  NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool started_ = false;
  bool shutting_down_ = false;
  bool any_error_ = false;
  std::atomic<bool> stop_requested_{false};

  uint64_t next_conn_id_ = 2;  // 0/1 are the listen/wake epoll ids
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::shared_ptr<NetServerCompletionHub> hub_;

  /// Connection-level histograms in the service's registry.
  obs::Histogram* lifetime_hist_ = nullptr;
  obs::Histogram* outbuf_hwm_hist_ = nullptr;
  obs::Histogram* ttfb_hist_ = nullptr;
};

}  // namespace slfe::net

#endif  // SLFE_NET_NET_SERVER_H_
