#include "slfe/net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "slfe/service/line_protocol.h"

namespace slfe::net {

namespace {

// epoll user-data ids for the two non-connection fds; connection ids
// start above them (next_conn_id_ begins at 2).
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

}  // namespace

/// Everything the loop knows about one peer. Owned by the connections_
/// map; only the loop thread touches it (workers reach the loop through
/// the CompletionHub, never the connection).
struct NetServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  /// Null until the handshake establishes the session (with auth
  /// configured, until a valid `auth` line arrives).
  std::unique_ptr<service::CommandSession> session;
  std::string inbuf;
  std::string outbuf;
  size_t out_off = 0;  ///< flushed prefix of outbuf (compacted lazily)
  /// Streamed submissions not yet completed on this connection.
  uint64_t outstanding = 0;
  /// Barrier active: buffered lines are NOT dispatched until outstanding
  /// drains to zero (pipelining stops at `wait`, exactly as a script
  /// expects).
  bool waiting = false;
  /// After the current barrier drains, close instead of resuming.
  bool quit_after_drain = false;
  /// No further dispatch; close once outstanding == 0 and outbuf flushed.
  bool closing = false;
  /// Close unconditionally at the end of the current pump (overflow), set
  /// from inside dispatch where an immediate close would free the running
  /// session.
  bool force_close = false;
  bool drop_on_close = false;  ///< count the close as server-initiated
  bool in_pump = false;        ///< re-entrance guard for PumpConnection
  uint32_t epoll_mask = 0;
  /// Observability: lifetime start, first-request-to-first-byte timing,
  /// and the largest pending-output backlog this peer ever accumulated.
  std::chrono::steady_clock::time_point accepted_at;
  std::chrono::steady_clock::time_point first_request_at;
  bool has_first_request = false;
  bool first_byte_recorded = false;
  size_t outbuf_high_water = 0;
};

/// One finished job on its way from a worker thread to the event loop.
struct NetServerCompletion {
  uint64_t conn_id = 0;
  uint64_t req = 0;
  service::JobResult result;
};

/// The worker->loop handoff. Completion callbacks run on JobService worker
/// threads and may outlive the server (a dropped connection's jobs still
/// finish), so they hold this by shared_ptr and check `closed` under the
/// lock instead of touching the server.
struct NetServerCompletionHub {
  std::mutex mu;
  std::deque<NetServerCompletion> items;
  int wake_fd = -1;
  bool closed = false;
};

NetServer::NetServer(service::JobService& service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  lifetime_hist_ = service_.metrics().GetHistogram(
      "slfe_net_connection_lifetime_seconds",
      "Accept-to-close seconds per TCP connection", 1e-3);
  outbuf_hwm_hist_ = service_.metrics().GetHistogram(
      "slfe_net_outbuf_high_water_bytes",
      "Largest pending-output backlog per TCP connection", 64.0);
  ttfb_hist_ = service_.metrics().GetHistogram(
      "slfe_net_request_to_first_byte_seconds",
      "First request byte to first response byte per TCP connection");
}

NetServer::~NetServer() {
  if (hub_ != nullptr) {
    std::lock_guard<std::mutex> lock(hub_->mu);
    hub_->closed = true;
  }
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(std::string("bind ") + options_.bind_address +
                            ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  hub_ = std::make_shared<NetServerCompletionHub>();
  hub_->wake_fd = wake_fd_;
  started_ = true;
  return Status::OK();
}

int NetServer::Serve() {
  std::vector<epoll_event> events(64);
  while (true) {
    if (options_.on_loop_tick) options_.on_loop_tick();
    if (stop_requested_.load() && !shutting_down_) BeginShutdown();
    if (shutting_down_ && connections_.empty()) break;

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      any_error_ = true;
      break;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        HandleAccept();
      } else if (id == kWakeId) {
        uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        DrainCompletions();
      } else {
        auto it = connections_.find(id);
        if (it == connections_.end()) continue;  // closed earlier this round
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(id, /*dropped=*/false);
          continue;
        }
        if (events[i].events & EPOLLIN) HandleReadable(*it->second);
        // Readable handling may have closed the connection; re-check.
        auto again = connections_.find(id);
        if (again != connections_.end() && (events[i].events & EPOLLOUT)) {
          PumpConnection(id);  // flushes, may resume a paused close
        }
      }
    }
  }
  return any_error_ ? 1 : 0;
}

void NetServer::Stop() {
  stop_requested_.store(true);
  Wake();
}

void NetServer::Wake() {
  // Only the lock-free eventfd write: a signal handler may call this (the
  // kernel delivers process-directed signals to an arbitrary thread, so
  // the loop's epoll_wait usually does NOT get the EINTR — it must be
  // woken explicitly for the next tick to run promptly).
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::HandleAccept() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a raced-away connection
    if (shutting_down_ || connections_.size() >= options_.max_connections) {
      // Turn the peer away with a terminated reject. Best-effort: the
      // socket buffer is empty, so the single line fits or the peer is
      // already gone.
      const char kFull[] = "reject: server full\n";
      (void)!::send(fd, kFull, sizeof(kFull) - 1, MSG_NOSIGNAL);
      ::close(fd);
      service_.RecordConnectionClosed(/*dropped=*/true);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->accepted_at = std::chrono::steady_clock::now();
    conn->epoll_mask = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->epoll_mask;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    service_.RecordConnectionAccepted();
    // The session is created lazily on the connection's first line (the
    // auth handshake when tokens are configured).
    connections_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::HandleReadable(Connection& conn) {
  uint64_t id = conn.id;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.has_first_request) {
        conn.has_first_request = true;
        conn.first_request_at = std::chrono::steady_clock::now();
      }
      conn.inbuf.append(buf, static_cast<size_t>(n));
      // Flood guard: a peer must not grow the daemon's heap without bound
      // by writing faster than its barrier allows us to dispatch.
      if (conn.inbuf.size() > options_.max_line_bytes * 4) {
        Output(conn, "reject: input buffer overflow\n");
        FlushWrites(conn);
        CloseConnection(id, /*dropped=*/true);
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed its end; nothing more can be delivered to it.
      CloseConnection(id, /*dropped=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(id, /*dropped=*/false);
    return;
  }
  PumpConnection(id);
}

void NetServer::PumpConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end() || it->second->in_pump) return;
  it->second->in_pump = true;

  while (true) {
    it = connections_.find(id);
    if (it == connections_.end()) return;  // closed mid-dispatch
    Connection& conn = *it->second;
    if (conn.closing || conn.force_close) break;
    if (conn.waiting) {
      if (conn.outstanding > 0) break;
      // Barrier released: every submission before the `wait` (or `quit`,
      // or daemon shutdown) has streamed its result.
      if (conn.quit_after_drain || shutting_down_) {
        conn.closing = true;
        break;
      }
      conn.waiting = false;
      uint64_t req = conn.session != nullptr ? conn.session->accepted() : 0;
      Output(conn, "done req=" + std::to_string(req) + "\n");
    }
    size_t pos = conn.inbuf.find('\n');
    if (pos == std::string::npos) {
      if (conn.inbuf.size() > options_.max_line_bytes) {
        Output(conn, "reject: line too long\n");
        FlushWrites(conn);
        CloseConnection(id, /*dropped=*/true);
        return;
      }
      break;
    }
    std::string line = conn.inbuf.substr(0, pos + 1);
    conn.inbuf.erase(0, pos + 1);
    DispatchLine(conn, line);
  }

  it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  conn.in_pump = false;
  if (conn.force_close) {
    CloseConnection(id, conn.drop_on_close);
    return;
  }
  if (!FlushWrites(conn)) return;
  if (conn.closing && conn.outstanding == 0 &&
      conn.out_off == conn.outbuf.size()) {
    CloseConnection(id, conn.drop_on_close);
  }
}

void NetServer::DispatchLine(Connection& conn, const std::string& line) {
  if (conn.session == nullptr) {
    HandleHandshake(conn, line);
    return;
  }
  switch (conn.session->HandleLine(line)) {
    case service::CommandSession::Disposition::kContinue:
      break;
    case service::CommandSession::Disposition::kWaitBarrier:
      conn.waiting = true;
      break;
    case service::CommandSession::Disposition::kQuit:
      conn.waiting = true;
      conn.quit_after_drain = true;
      break;
    case service::CommandSession::Disposition::kShutdown:
      Output(conn, "shutdown: draining\n");
      BeginShutdown();
      break;
  }
}

bool NetServer::HandleHandshake(Connection& conn, const std::string& line) {
  service::ParsedCommand cmd = service::ParseCommandLine(line);
  if (cmd.kind == service::ParsedCommand::Kind::kEmpty) return true;

  const bool required = !options_.auth_tokens.empty();
  if (cmd.kind == service::ParsedCommand::Kind::kAuth) {
    if (required) {
      auto it = options_.auth_tokens.find(cmd.auth_tenant);
      if (it == options_.auth_tokens.end() || it->second != cmd.auth_token) {
        // One generic message for unknown tenant and wrong token alike —
        // no tenant-existence oracle for a guessing peer.
        service_.RecordAuthFailure();
        Output(conn, "reject: auth failed\n");
        FlushWrites(conn);
        CloseConnection(conn.id, /*dropped=*/true);
        return false;
      }
    }
    std::string tenant = cmd.auth_tenant;
    MakeSession(conn, tenant);
    Output(conn, "ok tenant=" + tenant + "\n");
    return true;
  }
  if (required) {
    service_.RecordAuthFailure();
    Output(conn, "reject: auth required\n");
    FlushWrites(conn);
    CloseConnection(conn.id, /*dropped=*/true);
    return false;
  }
  // No auth configured and the peer opened with a regular command: an
  // unbound session, free to name any tenant (the stdin batch contract).
  MakeSession(conn, "");
  DispatchLine(conn, line);
  return true;
}

void NetServer::MakeSession(Connection& conn, const std::string& bound_tenant) {
  service::CommandSession::Options sopt = options_.session;
  sopt.streaming = true;
  sopt.allow_shutdown = options_.allow_shutdown;
  sopt.bound_tenant = bound_tenant;
  uint64_t id = conn.id;
  auto sink = [this, id](std::string line) {
    auto it = connections_.find(id);
    if (it != connections_.end()) Output(*it->second, std::move(line));
  };
  auto hub = hub_;
  auto on_submitted = [this, id, hub](const service::JobTicket& ticket,
                                      uint64_t req) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    ++it->second->outstanding;
    // The callback runs on a worker thread (or inline if the job already
    // finished): never touch the server directly, only the hub.
    ticket->OnComplete([hub, id, req](const service::JobResult& result) {
      std::lock_guard<std::mutex> lock(hub->mu);
      if (hub->closed) return;
      hub->items.push_back(NetServerCompletion{id, req, result});
      uint64_t one = 1;
      (void)!::write(hub->wake_fd, &one, sizeof(one));
    });
  };
  conn.session = std::make_unique<service::CommandSession>(
      service_, std::move(sopt), std::move(sink), std::move(on_submitted));
}

void NetServer::DrainCompletions() {
  std::deque<NetServerCompletion> batch;
  {
    std::lock_guard<std::mutex> lock(hub_->mu);
    batch.swap(hub_->items);
  }
  for (NetServerCompletion& done : batch) {
    if (!done.result.status.ok()) any_error_ = true;
    auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;  // peer gone; result discarded
    Connection& conn = *it->second;
    --conn.outstanding;
    Output(conn, service::FormatResult(done.result, done.req));
    service_.RecordResultStreamed();
    if (done.result.trace != nullptr) {
      // Completion-to-streamed latency: worker marked the trace complete,
      // the loop just handed the line to the socket path.
      double completed = done.result.trace->completed_at();
      if (completed >= 0.0) {
        done.result.trace->AddSpanSince("result_stream", completed);
      }
    }
    PumpConnection(done.conn_id);  // may release a barrier / finish a close
  }
}

void NetServer::Output(Connection& conn, std::string line) {
  if (conn.fd < 0 || conn.force_close) return;
  conn.outbuf.append(line);
  size_t pending = conn.outbuf.size() - conn.out_off;
  if (pending > conn.outbuf_high_water) conn.outbuf_high_water = pending;
  if (pending > options_.max_outbuf_bytes) {
    // A peer that stopped reading: drop it rather than buffer without
    // bound. Deferred to the end of the current pump — Output is called
    // from inside the session's dispatch, which must not free itself.
    conn.force_close = true;
    conn.drop_on_close = true;
  }
}

bool NetServer::FlushWrites(Connection& conn) {
  uint64_t id = conn.id;
  while (conn.out_off < conn.outbuf.size()) {
    ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                       conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      if (!conn.first_byte_recorded && conn.has_first_request) {
        conn.first_byte_recorded = true;
        ttfb_hist_->Observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                conn.first_request_at)
                                .count());
      }
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn, EPOLLIN | EPOLLOUT);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(id, /*dropped=*/false);
    return false;
  }
  if (conn.out_off > 0) {
    conn.outbuf.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  UpdateEpoll(conn, EPOLLIN);
  return true;
}

void NetServer::UpdateEpoll(Connection& conn, uint32_t mask) {
  if (conn.epoll_mask == mask || conn.fd < 0) return;
  conn.epoll_mask = mask;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::CloseConnection(uint64_t id, bool dropped) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.session != nullptr && conn.session->any_error()) any_error_ = true;
  if (conn.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
  }
  lifetime_hist_->Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              conn.accepted_at)
                              .count());
  outbuf_hwm_hist_->Observe(static_cast<double>(conn.outbuf_high_water));
  service_.RecordConnectionClosed(dropped);
  connections_.erase(it);
}

void NetServer::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Every connection drains its outstanding jobs, then closes. Snapshot
  // the ids first: pumping may erase entries.
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    it->second->waiting = true;
    PumpConnection(id);
  }
}

}  // namespace slfe::net
