#ifndef SLFE_COMMON_WORK_STEALING_H_
#define SLFE_COMMON_WORK_STEALING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "slfe/common/thread_pool.h"

namespace slfe {

/// Fine-grained work-stealing scheduler over a vertex range, following the
/// paper's scheme (Section 3.6): the range is split into mini-chunks of 256
/// vertices; each thread first drains its originally assigned slice, then
/// steals remaining mini-chunks from busy threads. Shared offsets are
/// advanced with atomic fetch-add (the paper's __sync_fetch_and_* idiom).
class WorkStealingScheduler {
 public:
  static constexpr size_t kMiniChunk = 256;

  /// `enable_stealing=false` degrades to a static partition — used by the
  /// Fig. 10a ablation ("w/o Stealing" bar). `mini_chunk` is the stealing
  /// granularity in items (0 = the paper's 256): smaller chunks balance
  /// skewed bands at the price of more fetch-adds per item, so the
  /// crossover is hardware-dependent — the ROADMAP multicore-tuning item
  /// this knob exists for.
  explicit WorkStealingScheduler(bool enable_stealing = true,
                                 size_t mini_chunk = kMiniChunk)
      : enable_stealing_(enable_stealing),
        mini_chunk_(mini_chunk == 0 ? kMiniChunk : mini_chunk) {}

  void set_enable_stealing(bool enable) { enable_stealing_ = enable; }
  bool enable_stealing() const { return enable_stealing_; }

  void set_mini_chunk(size_t mini_chunk) {
    mini_chunk_ = mini_chunk == 0 ? kMiniChunk : mini_chunk;
  }
  size_t mini_chunk() const { return mini_chunk_; }

  /// Band-partitioned variant for work that lives in per-owner buffers
  /// (the partition-aware guidance sweep's per-partition frontiers): band b
  /// holds `sizes[b]` items; worker w first drains band w (its own
  /// partition, the NUMA-local work), then — stealing enabled — drains the
  /// remaining bands' leftover mini-chunks. `fn(worker, band, lo, hi)`
  /// processes items [lo, hi) of band `band`; every item is processed
  /// exactly once. Returns per-worker processed-chunk counts.
  std::vector<uint64_t> RunBands(
      ThreadPool& pool, const std::vector<size_t>& sizes,
      const std::function<void(size_t, size_t, size_t, size_t)>& fn) const {
    size_t nthreads = pool.num_threads();
    size_t bands = sizes.size();
    std::vector<uint64_t> processed(nthreads, 0);
    if (bands == 0) return processed;

    // One shared cursor per band, in mini-chunk units; thieves and the
    // band's owner advance it with fetch-add so no chunk runs twice.
    std::vector<std::atomic<size_t>> next(bands);
    std::vector<size_t> chunks(bands);
    for (size_t b = 0; b < bands; ++b) {
      next[b].store(0, std::memory_order_relaxed);
      chunks[b] = (sizes[b] + mini_chunk_ - 1) / mini_chunk_;
    }

    pool.ParallelRun([&](size_t w) {
      uint64_t done = 0;
      auto drain = [&](size_t band) {
        while (true) {
          size_t c = next[band].fetch_add(1, std::memory_order_relaxed);
          if (c >= chunks[band]) break;
          size_t lo = c * mini_chunk_;
          size_t hi = lo + mini_chunk_ < sizes[band] ? lo + mini_chunk_
                                                     : sizes[band];
          fn(w, band, lo, hi);
          ++done;
        }
      };
      if (enable_stealing_) {
        // Own band first (w mod bands keeps surplus workers useful), then
        // sweep the others for leftovers.
        for (size_t i = 0; i < bands; ++i) drain((w + i) % bands);
      } else {
        // Static partition: strided ownership so every band is covered
        // even when there are more bands than workers.
        for (size_t b = w; b < bands; b += nthreads) drain(b);
      }
      processed[w] = done;
    });
    return processed;
  }

  /// Processes every mini-chunk [lo, hi) of [begin, end) exactly once using
  /// the pool's workers. `fn(worker, lo, hi)` does the chunk's work.
  /// Returns per-worker counts of processed chunks (imbalance diagnostics).
  std::vector<uint64_t> Run(
      ThreadPool& pool, size_t begin, size_t end,
      const std::function<void(size_t, size_t, size_t)>& fn) const {
    size_t nthreads = pool.num_threads();
    size_t n = end > begin ? end - begin : 0;
    size_t num_chunks = (n + mini_chunk_ - 1) / mini_chunk_;
    std::vector<uint64_t> processed(nthreads, 0);
    if (num_chunks == 0) return processed;

    // Each worker owns a contiguous band of mini-chunks; `next[w]` is the
    // shared cursor into that band, advanced atomically so thieves and the
    // owner never double-process a chunk.
    size_t per = (num_chunks + nthreads - 1) / nthreads;
    std::vector<std::atomic<size_t>> next(nthreads);
    std::vector<size_t> band_end(nthreads);
    for (size_t w = 0; w < nthreads; ++w) {
      size_t lo = w * per;
      next[w].store(lo < num_chunks ? lo : num_chunks,
                    std::memory_order_relaxed);
      band_end[w] = (w + 1) * per < num_chunks ? (w + 1) * per : num_chunks;
    }

    pool.ParallelRun([&](size_t w) {
      uint64_t done = 0;
      auto drain = [&](size_t victim) {
        while (true) {
          size_t c = next[victim].fetch_add(1, std::memory_order_relaxed);
          if (c >= band_end[victim]) break;
          size_t lo = begin + c * mini_chunk_;
          size_t hi = lo + mini_chunk_ < end ? lo + mini_chunk_ : end;
          fn(w, lo, hi);
          ++done;
        }
      };
      drain(w);
      if (enable_stealing_) {
        for (size_t i = 1; i < nthreads; ++i) drain((w + i) % nthreads);
      }
      processed[w] = done;
    });
    return processed;
  }

 private:
  bool enable_stealing_;
  size_t mini_chunk_;
};

}  // namespace slfe

#endif  // SLFE_COMMON_WORK_STEALING_H_
