#ifndef SLFE_COMMON_TIMER_H_
#define SLFE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace slfe {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals — used to split
/// engine runtime into pull-mode vs push-mode shares (paper Fig. 4).
class AccumTimer {
 public:
  void Start() { t_.Reset(); running_ = true; }
  void Stop() {
    if (running_) {
      total_ += t_.Seconds();
      running_ = false;
    }
  }
  void Reset() { total_ = 0; running_ = false; }
  double Seconds() const { return total_; }

 private:
  Timer t_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace slfe

#endif  // SLFE_COMMON_TIMER_H_
