#ifndef SLFE_COMMON_BITMAP_H_
#define SLFE_COMMON_BITMAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "slfe/common/logging.h"

namespace slfe {

/// Fixed-size bitmap with atomic set/reset, used for vertex active sets.
/// Concurrent `SetBit`/`TestBit` are safe; `Resize`/`Clear`/`Fill` must not
/// race with readers.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t size) { Resize(size); }

  Bitmap(const Bitmap& other) { CopyFrom(other); }
  Bitmap& operator=(const Bitmap& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Number of addressable bits.
  size_t size() const { return size_; }

  /// Resizes to `size` bits, clearing all of them.
  void Resize(size_t size) {
    size_ = size;
    words_.assign(WordCount(size), Word{0});
  }

  /// Clears all bits.
  void Clear() {
    for (auto& w : words_) w.v.store(0, std::memory_order_relaxed);
  }

  /// Sets all bits in [0, size).
  void Fill() {
    size_t full_words = size_ / 64;
    for (size_t i = 0; i < full_words; ++i)
      words_[i].v.store(~uint64_t{0}, std::memory_order_relaxed);
    size_t rem = size_ % 64;
    if (rem != 0) {
      words_[full_words].v.store((uint64_t{1} << rem) - 1,
                                 std::memory_order_relaxed);
    }
  }

  bool TestBit(size_t i) const {
    SLFE_CHECK_LT(i, size_);
    return (words_[i / 64].v.load(std::memory_order_relaxed) >>
            (i % 64)) & 1;
  }

  /// Atomically sets bit i. Returns true iff this call changed it 0 -> 1.
  bool SetBit(size_t i) {
    SLFE_CHECK_LT(i, size_);
    uint64_t mask = uint64_t{1} << (i % 64);
    uint64_t old =
        words_[i / 64].v.fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  /// Atomically clears bit i. Returns true iff this call changed it 1 -> 0.
  bool ResetBit(size_t i) {
    SLFE_CHECK_LT(i, size_);
    uint64_t mask = uint64_t{1} << (i % 64);
    uint64_t old =
        words_[i / 64].v.fetch_and(~mask, std::memory_order_relaxed);
    return (old & mask) != 0;
  }

  /// Population count over the whole bitmap.
  size_t CountOnes() const {
    size_t n = 0;
    for (const auto& w : words_)
      n += static_cast<size_t>(
          __builtin_popcountll(w.v.load(std::memory_order_relaxed)));
    return n;
  }

  /// Invokes fn(i) for every set bit i, in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi].v.load(std::memory_order_relaxed);
      while (w != 0) {
        int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Raw 64-bit word (for bulk scans); word w covers bits [64w, 64w+63].
  uint64_t Word64(size_t w) const {
    return words_[w].v.load(std::memory_order_relaxed);
  }
  size_t WordCount() const { return words_.size(); }

 private:
  // std::atomic<uint64_t> is neither copyable nor movable; wrapping it lets
  // us keep the words in a std::vector.
  struct Word {
    Word() = default;
    explicit Word(uint64_t init) : v(init) {}
    Word(const Word& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& o) {
      v.store(o.v.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
      return *this;
    }
    std::atomic<uint64_t> v{0};
  };

  static size_t WordCount(size_t bits) { return (bits + 63) / 64; }

  void CopyFrom(const Bitmap& other) {
    size_ = other.size_;
    words_ = other.words_;
  }

  size_t size_ = 0;
  std::vector<Word> words_;
};

}  // namespace slfe

#endif  // SLFE_COMMON_BITMAP_H_
