#include "slfe/common/logging.h"

#include <atomic>
#include <chrono>

namespace slfe {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& EmitMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace slfe
