#ifndef SLFE_COMMON_THREAD_POOL_H_
#define SLFE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slfe {

/// A fixed-size pool that executes "parallel-for" style jobs: every worker
/// invokes the same callable with its worker index, and ParallelRun returns
/// once all workers finish. This is the execution substrate for one
/// simulated cluster node; thread 0 is the caller itself so a pool of size 1
/// adds no threading overhead.
class ThreadPool {
 public:
  /// Creates `num_threads` logical workers (num_threads - 1 OS threads plus
  /// the calling thread). Precondition: num_threads >= 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(worker_index) on every worker and blocks until all complete.
  /// Not reentrant: do not call ParallelRun from inside a job.
  void ParallelRun(const std::function<void(size_t)>& fn);

  /// Convenience: splits [begin, end) into per-worker contiguous slices and
  /// runs fn(worker, slice_begin, slice_end) on each.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t index);

  size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  uint64_t job_epoch_ = 0;
  size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace slfe

#endif  // SLFE_COMMON_THREAD_POOL_H_
