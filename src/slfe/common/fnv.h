#ifndef SLFE_COMMON_FNV_H_
#define SLFE_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>

namespace slfe {

/// The one FNV-1a implementation. Three subsystems depend on these exact
/// constants staying in lockstep: Graph::fingerprint() (cache keys),
/// GuidanceCache::MakeKey (roots digests), and the GuidanceStore file
/// checksum (on-disk compatibility) — so the hash lives here, once.
inline constexpr uint64_t kFnvBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Folds one 64-bit value into the running hash (word-granularity FNV-1a,
/// the form the fingerprint and key digests use).
inline uint64_t Fnv1aMix(uint64_t h, uint64_t value) {
  h ^= value;
  h *= kFnvPrime;
  return h;
}

/// Folds a byte range into the running hash (the on-disk checksum form).
inline uint64_t Fnv1aBytes(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds a byte range at word granularity: 8-byte chunks through Fnv1aMix,
/// the sub-word tail through the byte fold. ~8x the byte fold's throughput,
/// used where the hashed volume is megabytes (the graph arena payload,
/// re-verified on every warm start). NOT interchangeable with Fnv1aBytes —
/// each on-disk format picks one and keeps it forever.
inline uint64_t Fnv1aWords(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  size_t words = bytes / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    __builtin_memcpy(&w, p + i * 8, 8);  // alignment-safe load
    h = Fnv1aMix(h, w);
  }
  return Fnv1aBytes(p + words * 8, bytes - words * 8, h);
}

}  // namespace slfe

#endif  // SLFE_COMMON_FNV_H_
