#ifndef SLFE_COMMON_FNV_H_
#define SLFE_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>

namespace slfe {

/// The one FNV-1a implementation. Three subsystems depend on these exact
/// constants staying in lockstep: Graph::fingerprint() (cache keys),
/// GuidanceCache::MakeKey (roots digests), and the GuidanceStore file
/// checksum (on-disk compatibility) — so the hash lives here, once.
inline constexpr uint64_t kFnvBasis = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Folds one 64-bit value into the running hash (word-granularity FNV-1a,
/// the form the fingerprint and key digests use).
inline uint64_t Fnv1aMix(uint64_t h, uint64_t value) {
  h ^= value;
  h *= kFnvPrime;
  return h;
}

/// Folds a byte range into the running hash (the on-disk checksum form).
inline uint64_t Fnv1aBytes(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace slfe

#endif  // SLFE_COMMON_FNV_H_
