#ifndef SLFE_COMMON_LOGGING_H_
#define SLFE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace slfe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; set to kWarning in benches to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message and aborts the process. Used by SLFE_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define SLFE_LOG(level)                                                  \
  ::slfe::internal_logging::LogMessage(::slfe::LogLevel::k##level,       \
                                       __FILE__, __LINE__)

/// Invariant check that stays on in release builds. On failure logs the
/// condition plus any streamed context and aborts.
#define SLFE_CHECK(cond)                                                 \
  if (cond) {                                                            \
  } else                                                                 \
    ::slfe::internal_logging::FatalLogMessage(__FILE__, __LINE__, #cond)

#define SLFE_CHECK_EQ(a, b) SLFE_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define SLFE_CHECK_NE(a, b) SLFE_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define SLFE_CHECK_LT(a, b) SLFE_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define SLFE_CHECK_LE(a, b) SLFE_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define SLFE_CHECK_GT(a, b) SLFE_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define SLFE_CHECK_GE(a, b) SLFE_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace slfe

#endif  // SLFE_COMMON_LOGGING_H_
