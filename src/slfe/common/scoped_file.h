#ifndef SLFE_COMMON_SCOPED_FILE_H_
#define SLFE_COMMON_SCOPED_FILE_H_

#include <cstdio>
#include <string>

namespace slfe {

/// RAII wrapper over std::FILE, shared by the file-backed subsystems (ooc
/// shards, guidance store).
class ScopedFile {
 public:
  ScopedFile(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~ScopedFile() {
    if (f_ != nullptr) std::fclose(f_);
  }
  ScopedFile(const ScopedFile&) = delete;
  ScopedFile& operator=(const ScopedFile&) = delete;

  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};

}  // namespace slfe

#endif  // SLFE_COMMON_SCOPED_FILE_H_
