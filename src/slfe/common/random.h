#ifndef SLFE_COMMON_RANDOM_H_
#define SLFE_COMMON_RANDOM_H_

#include <cstdint>

namespace slfe {

/// Deterministic xorshift128+ generator. Used by the graph generators so
/// that every benchmark graph is reproducible from a fixed seed across
/// platforms (std::mt19937 distributions are not guaranteed portable).
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid weak low-entropy states.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace slfe

#endif  // SLFE_COMMON_RANDOM_H_
