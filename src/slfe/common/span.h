#ifndef SLFE_COMMON_SPAN_H_
#define SLFE_COMMON_SPAN_H_

#include <cstddef>

namespace slfe {

/// A read-only pointer+length view over contiguous elements. The CSR
/// accessors return this instead of `const std::vector&` so adjacency can
/// live either in owned heap vectors or in an mmap'd graph arena without
/// the call sites caring which. Deliberately minimal (no std::span
/// dependency in public headers): iteration, indexing, and sizing — the
/// operations the fingerprint loops and serializers actually use.
template <typename T>
class ConstSpan {
 public:
  constexpr ConstSpan() = default;
  constexpr ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace slfe

#endif  // SLFE_COMMON_SPAN_H_
