#include "slfe/common/thread_pool.h"

#include "slfe/common/logging.h"

namespace slfe {

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  SLFE_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads - 1);
  for (size_t i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::ParallelRun(const std::function<void(size_t)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = num_threads_ - 1;
    ++job_epoch_;
  }
  cv_job_.notify_all();
  fn(0);  // The caller doubles as worker 0.
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  size_t n = end > begin ? end - begin : 0;
  size_t per = (n + num_threads_ - 1) / num_threads_;
  ParallelRun([&](size_t w) {
    size_t lo = begin + w * per;
    size_t hi = lo + per < end ? lo + per : end;
    if (lo < hi) fn(w, lo, hi);
  });
}

void ThreadPool::WorkerLoop(size_t index) {
  uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace slfe
