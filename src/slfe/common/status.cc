#include "slfe/common/status.h"

namespace slfe {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace slfe
