#ifndef SLFE_COMMON_DIRECTION_H_
#define SLFE_COMMON_DIRECTION_H_

#include <cstdint>

namespace slfe {

/// The Ligra/Gemini direction-switch heuristic, shared by every
/// frontier-parallel sweep in the system (ShmEngine::EdgeMap, the parallel
/// RR-guidance generator): run dense/pull when the frontier's outgoing edge
/// count exceeds `dense_fraction` of the graph's edges, sparse/push
/// otherwise. Gemini's default fraction is 1/20.
inline bool ChooseDense(uint64_t frontier_out_edges, uint64_t total_edges,
                        double dense_fraction = 0.05) {
  return static_cast<double>(frontier_out_edges) >
         static_cast<double>(total_edges) * dense_fraction;
}

}  // namespace slfe

#endif  // SLFE_COMMON_DIRECTION_H_
