#ifndef SLFE_COMMON_STATUS_H_
#define SLFE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace slfe {

/// Error codes used across the SLFE library. The library does not throw
/// exceptions; every fallible operation returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kCorruption,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
};

/// Returns a human-readable name for a status code ("Ok", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modelled after the RocksDB/Abseil
/// Status idiom. Cheap to copy in the OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return 42;` or `return Status::IOError(...)`.
  Result(T value) : data_(std::move(value)) {}            // NOLINT
  Result(Status status) : data_(std::move(status)) {}     // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Error status; OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::move(std::get<T>(data_)); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define SLFE_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::slfe::Status _s = (expr);                   \
    if (!_s.ok()) return _s;                      \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value to `lhs` or
/// returning the error status.
#define SLFE_ASSIGN_OR_RETURN(lhs, expr)          \
  auto SLFE_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!SLFE_CONCAT_(_res_, __LINE__).ok())        \
    return SLFE_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(SLFE_CONCAT_(_res_, __LINE__)).value()

#define SLFE_CONCAT_INNER_(a, b) a##b
#define SLFE_CONCAT_(a, b) SLFE_CONCAT_INNER_(a, b)

}  // namespace slfe

#endif  // SLFE_COMMON_STATUS_H_
