#ifndef SLFE_COMMON_COUNTERS_H_
#define SLFE_COMMON_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace slfe {

/// A relaxed-order atomic counter. Engines increment these on hot paths, so
/// the memory order is deliberately the weakest; totals are read only after
/// barriers.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }
  uint64_t Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Work metrics collected per engine run. "Computations" follows the paper's
/// definition: one edge-aggregation evaluation feeding a destination vertex
/// (Fig. 9 y-axis); "updates" is the number of times a vertex property was
/// actually overwritten (Table 2 numerator).
struct WorkMetrics {
  Counter computations;       ///< edge-level aggregation evaluations
  Counter updates;            ///< vertex property overwrites
  Counter skipped;            ///< computations bypassed by RR
  Counter messages;           ///< inter-node messages sent
  Counter bytes;              ///< inter-node bytes sent

  void Reset() {
    computations.Reset();
    updates.Reset();
    skipped.Reset();
    messages.Reset();
    bytes.Reset();
  }
};

/// Per-iteration computation history (Fig. 9 series).
class IterationTrace {
 public:
  void Record(uint64_t computations) { per_iter_.push_back(computations); }
  void Clear() { per_iter_.clear(); }
  const std::vector<uint64_t>& series() const { return per_iter_; }
  uint64_t Total() const {
    uint64_t t = 0;
    for (uint64_t c : per_iter_) t += c;
    return t;
  }

 private:
  std::vector<uint64_t> per_iter_;
};

}  // namespace slfe

#endif  // SLFE_COMMON_COUNTERS_H_
