#pragma once

#include <string>

namespace slfe {

// Populated by CMake (configure_file of common/version.cc.in).
const char* BuildVersion();  // project version, e.g. "0.9.0"
const char* BuildCommit();   // short git hash, or "unknown" outside a checkout

// "slfe-<version>+<commit>", as shown in the stats header line.
std::string BuildVersionString();

}  // namespace slfe
