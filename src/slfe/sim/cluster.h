#ifndef SLFE_SIM_CLUSTER_H_
#define SLFE_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "slfe/common/thread_pool.h"
#include "slfe/sim/comm.h"

namespace slfe::sim {

/// Everything one SPMD rank needs: its id, the shared World, and a private
/// thread pool for intra-node parallelism (the paper's 68 cores per node).
struct NodeContext {
  int rank = 0;
  int num_nodes = 1;
  World* world = nullptr;
  ThreadPool* pool = nullptr;
};

/// Drives an SPMD program over N simulated nodes, each a dedicated OS
/// thread with `threads_per_node` worker threads. This substitutes for
/// `mpirun -np N` on the paper's cluster (DESIGN.md §2).
class Cluster {
 public:
  Cluster(int num_nodes, int threads_per_node = 1);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return num_nodes_; }
  World& world() { return *world_; }

  /// Runs `fn(ctx)` once per rank, concurrently, and joins. Can be invoked
  /// repeatedly; mailboxes and barrier state persist across runs.
  void Run(const std::function<void(NodeContext&)>& fn);

 private:
  int num_nodes_;
  std::unique_ptr<World> world_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
};

}  // namespace slfe::sim

#endif  // SLFE_SIM_CLUSTER_H_
