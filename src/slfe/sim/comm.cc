#include "slfe/sim/comm.h"

namespace slfe::sim {

World::World(int num_nodes)
    : num_nodes_(num_nodes),
      mailboxes_(num_nodes),
      per_node_(num_nodes) {
  SLFE_CHECK_GE(num_nodes, 1);
}

void World::Send(int src, int dst, const void* data, size_t size) {
  SLFE_CHECK_LT(dst, num_nodes_);
  Message m;
  m.src_node = src;
  m.payload.resize(size);
  if (size > 0) std::memcpy(m.payload.data(), data, size);
  {
    std::lock_guard<std::mutex> lock(mailboxes_[dst].mu);
    mailboxes_[dst].queue.push_back(std::move(m));
  }
  if (src != dst) {
    // Loopback traffic is free: a real cluster node does not cross the
    // network to talk to itself.
    per_node_[src].messages.Add();
    per_node_[src].bytes.Add(size);
    total_messages_.Add();
    total_bytes_.Add(size);
  }
}

std::vector<Message> World::Recv(int rank) {
  std::lock_guard<std::mutex> lock(mailboxes_[rank].mu);
  std::vector<Message> out;
  out.swap(mailboxes_[rank].queue);
  return out;
}

void World::Barrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  bool my_sense = barrier_sense_;
  if (++barrier_waiting_ == num_nodes_) {
    barrier_waiting_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_sense_ != my_sense; });
  }
}

double World::AllReduce(int rank, double value,
                        const std::function<double(double, double)>& op) {
  (void)rank;
  {
    std::lock_guard<std::mutex> lock(reduce_mu_);
    if (reduce_arrived_ == 0) {
      reduce_value_ = value;
    } else {
      reduce_value_ = op(reduce_value_, value);
    }
    ++reduce_arrived_;
  }
  Barrier();  // all contributions in
  double result;
  {
    std::lock_guard<std::mutex> lock(reduce_mu_);
    result = reduce_value_;
  }
  Barrier();  // all reads done before scratch reuse
  {
    std::lock_guard<std::mutex> lock(reduce_mu_);
    reduce_arrived_ = 0;
  }
  Barrier();  // reset visible to everyone
  return result;
}

uint64_t World::AllReduceSum(int rank, uint64_t value) {
  (void)rank;
  reduce_mu_.lock();
  reduce_u64_ += value;
  reduce_mu_.unlock();
  Barrier();
  uint64_t result = reduce_u64_;
  Barrier();
  reduce_mu_.lock();
  reduce_u64_ = 0;
  reduce_mu_.unlock();
  Barrier();
  return result;
}

void World::ResetTraffic() {
  total_messages_.Reset();
  total_bytes_.Reset();
  for (auto& t : per_node_) {
    t.messages.Reset();
    t.bytes.Reset();
  }
}

}  // namespace slfe::sim
