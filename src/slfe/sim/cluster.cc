#include "slfe/sim/cluster.h"

#include <thread>

#include "slfe/common/logging.h"

namespace slfe::sim {

Cluster::Cluster(int num_nodes, int threads_per_node)
    : num_nodes_(num_nodes), world_(std::make_unique<World>(num_nodes)) {
  SLFE_CHECK_GE(num_nodes, 1);
  SLFE_CHECK_GE(threads_per_node, 1);
  pools_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    pools_.push_back(
        std::make_unique<ThreadPool>(static_cast<size_t>(threads_per_node)));
  }
}

Cluster::~Cluster() = default;

void Cluster::Run(const std::function<void(NodeContext&)>& fn) {
  std::vector<std::thread> ranks;
  ranks.reserve(num_nodes_ - 1);
  auto body = [&](int rank) {
    NodeContext ctx;
    ctx.rank = rank;
    ctx.num_nodes = num_nodes_;
    ctx.world = world_.get();
    ctx.pool = pools_[rank].get();
    fn(ctx);
  };
  for (int r = 1; r < num_nodes_; ++r) ranks.emplace_back(body, r);
  body(0);  // rank 0 runs on the calling thread
  for (auto& t : ranks) t.join();
}

}  // namespace slfe::sim
