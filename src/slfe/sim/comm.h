#ifndef SLFE_SIM_COMM_H_
#define SLFE_SIM_COMM_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <vector>

#include "slfe/common/counters.h"
#include "slfe/common/logging.h"

namespace slfe::sim {

/// Models the network of the paper's 8-node InfiniBand cluster. Virtual
/// communication time for a superstep is
///   latency_per_message * messages + bytes / bandwidth
/// evaluated per node and max-reduced, mirroring BSP h-relation cost.
/// Defaults approximate a 100 Gb/s fabric with ~2 us one-way latency.
struct CostModel {
  double latency_per_message = 2e-6;
  double bytes_per_second = 12.5e9;  // 100 Gb/s

  double Cost(uint64_t messages, uint64_t bytes) const {
    return latency_per_message * static_cast<double>(messages) +
           static_cast<double>(bytes) / bytes_per_second;
  }
};

/// One inter-node message: an opaque byte payload.
struct Message {
  int src_node = 0;
  std::vector<uint8_t> payload;
};

/// In-memory stand-in for MPI. N ranks (threads) share a World; each rank
/// interacts through its own Comm handle (rank id + mailboxes + barrier +
/// reduction scratch). All collective calls must be invoked by every rank.
class World {
 public:
  explicit World(int num_nodes);

  int num_nodes() const { return num_nodes_; }

  /// Delivers a message into `dst`'s mailbox. Thread-safe.
  void Send(int src, int dst, const void* data, size_t size);

  /// Drains and returns all messages queued for `rank`. Call after a
  /// barrier so that all sends for the superstep have landed.
  std::vector<Message> Recv(int rank);

  /// Sense-reversing barrier across all ranks.
  void Barrier();

  /// All-reduce of one double using `op` (associative+commutative).
  /// Every rank passes its local value; all receive the reduction.
  double AllReduce(int rank, double value,
                   const std::function<double(double, double)>& op);

  /// All-reduce specialization: sum of uint64 (active-vertex counts etc.).
  uint64_t AllReduceSum(int rank, uint64_t value);

  /// Traffic accounting for the current epoch (reset via ResetTraffic).
  uint64_t TotalMessages() const { return total_messages_.Get(); }
  uint64_t TotalBytes() const { return total_bytes_.Get(); }
  uint64_t NodeMessages(int rank) const {
    return per_node_[rank].messages.Get();
  }
  uint64_t NodeBytes(int rank) const { return per_node_[rank].bytes.Get(); }
  void ResetTraffic();

 private:
  struct Mailbox {
    std::mutex mu;
    std::vector<Message> queue;
  };
  struct NodeTraffic {
    Counter messages;
    Counter bytes;
  };

  int num_nodes_;
  std::vector<Mailbox> mailboxes_;
  std::vector<NodeTraffic> per_node_;  // outbound traffic per rank
  Counter total_messages_;
  Counter total_bytes_;

  // Barrier state (sense-reversing).
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  bool barrier_sense_ = false;

  // Reduction scratch.
  std::mutex reduce_mu_;
  double reduce_value_ = 0;
  uint64_t reduce_u64_ = 0;
  int reduce_arrived_ = 0;
};

}  // namespace slfe::sim

#endif  // SLFE_SIM_COMM_H_
