#ifndef SLFE_GRAPH_PARTITIONER_H_
#define SLFE_GRAPH_PARTITIONER_H_

#include <cstddef>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// A contiguous vertex range [begin, end) owned by one cluster node.
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;
  VertexId size() const { return end - begin; }
  bool Contains(VertexId v) const { return v >= begin && v < end; }
};

/// The chunk-based (contiguous-range) partitioning SLFE inherits from
/// Gemini: vertices keep their natural order and the cut points are chosen
/// so each node receives roughly |E|/p "work units". The balance metric
/// counts alpha * degree + 1 per vertex, matching Gemini's hybrid
/// vertex+edge balancing.
class ChunkPartitioner {
 public:
  struct Options {
    double alpha = 1.0;  ///< weight of an edge relative to a vertex
  };

  ChunkPartitioner() : options_(Options{}) {}
  explicit ChunkPartitioner(Options options) : options_(options) {}

  /// Splits [0, |V|) into `num_parts` contiguous ranges balanced by
  /// alpha*out_degree+1. Returns exactly num_parts ranges covering V
  /// (possibly empty at the tail for tiny graphs).
  std::vector<VertexRange> Partition(const Graph& graph,
                                     size_t num_parts) const;

  /// Owner lookup: index of the range containing v.
  /// Precondition: ranges form a partition of [0, |V|).
  static size_t OwnerOf(const std::vector<VertexRange>& ranges, VertexId v);

  /// Validates that ranges are contiguous, disjoint, and cover [0, n).
  static Status ValidatePartition(const std::vector<VertexRange>& ranges,
                                  VertexId n);

  /// Max over nodes of (node edge count) / (|E|/p) — 1.0 is perfect.
  static double EdgeImbalance(const Graph& graph,
                              const std::vector<VertexRange>& ranges);

 private:
  Options options_;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_PARTITIONER_H_
