#ifndef SLFE_GRAPH_ARENA_H_
#define SLFE_GRAPH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/partitioner.h"
#include "slfe/graph/types.h"

namespace slfe {

/// How the adjacency (neighbor) planes are stored in an arena file.
/// Offsets, weights, and ranges are always raw — they are either tiny or
/// incompressible — so the codec byte only governs the two neighbor planes.
enum class ArenaCodec : uint8_t {
  /// Packed little-endian VertexId planes, served zero-copy straight from
  /// the mapping. Biggest files, cheapest open, and the only codec whose
  /// resident cost is pure page cache (shared across processes).
  kRaw = 0,
  /// Zigzag delta varints per CSR row (neighbors within a row are in
  /// insertion order, not sorted, hence the signed deltas). Decoded into
  /// arena-owned heap vectors at Open, so serving stays zero-branch;
  /// trades open-time decode and private heap for a smaller file.
  kDeltaVarint = 1,
};

/// Section indices into ArenaHeader::sections (fixed order; the payload
/// checksum folds section bytes in this order).
enum ArenaSectionId : uint32_t {
  kArenaOutOffsets = 0,
  kArenaOutNeighbors = 1,
  kArenaOutWeights = 2,
  kArenaInOffsets = 3,
  kArenaInNeighbors = 4,
  kArenaInWeights = 5,
  kArenaRanges = 6,
  kArenaSectionCount = 7,
};

/// One section's placement in the file. Offsets are 64-byte aligned so the
/// typed planes can be read in place from the page-aligned mapping.
struct ArenaSection {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

/// Fixed-width on-disk arena header (version 1, little-endian, `*.sga`).
/// Exact-width fields in padding-free order; public (unlike the guidance
/// StoreHeader) because the corruption tests patch headers and recompute
/// checksums through it.
///
///   magic              u32   0x53'4C'47'41 ("SLGA")
///   version            u32   low 16 bits: format version (1);
///                            bits 16-23: ArenaCodec byte; bits 24-31: 0
///   graph_fingerprint  u64   Graph::fingerprint() of the stored graph
///   num_edges          u64
///   num_vertices       u32
///   num_nodes          u32   partition ranges persisted (>= 1)
///   traits             u32   bit 0 symmetric, bit 1 weighted
///   reserved           u32   must be 0
///   sections           {u64 offset, u64 bytes} x 7 (ArenaSectionId order)
///   payload_checksum   u64   FNV-1a over every section's bytes in order
///                            (alignment padding excluded)
///   header_checksum    u64   FNV-1a over all preceding header bytes
///                            (must stay the last field)
struct ArenaHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t graph_fingerprint = 0;
  uint64_t num_edges = 0;
  uint32_t num_vertices = 0;
  uint32_t num_nodes = 0;
  uint32_t traits = 0;
  uint32_t reserved = 0;
  ArenaSection sections[kArenaSectionCount];
  uint64_t payload_checksum = 0;
  uint64_t header_checksum = 0;  // must stay last (see ArenaHeaderChecksum)
};
static_assert(sizeof(ArenaHeader) == 168, "ArenaHeader must pack to 168 bytes");

/// Recomputes the header self-checksum (everything before the
/// header_checksum field). Exposed for the corruption tests, which patch
/// header fields and must re-seal the header to reach deeper validation.
uint64_t ArenaHeaderChecksum(const ArenaHeader& header);

struct ArenaBuildOptions {
  /// Cluster shape whose ownership ranges are persisted (the same
  /// edge-balanced chunking DistGraph::BuildRanges computes).
  int num_nodes = 1;
  ArenaCodec codec = ArenaCodec::kRaw;
  /// Graph traits to carry through the restart (api::GraphTraits mirrors;
  /// kept as plain bools so graph/ stays independent of api/).
  bool symmetric = false;
  bool weighted = false;
};

struct ArenaOpenOptions {
  /// Verify the payload checksum at open (one sequential pass over the
  /// file). Off trusts the header checksum + structural validation only —
  /// the demand-paging mode for graphs larger than RAM, where a full
  /// verification pass would fault every page in.
  bool verify_payload = true;
};

/// An immutable on-disk graph: both CSR directions, edge weights, the
/// fingerprint, and the partition ranges, in one mmap'd file. The write
/// side uses the GuidanceStore discipline (versioned header, FNV-1a
/// checksums, unique temp + atomic rename); the read side is open + map +
/// validate, so a daemon restart costs page-table setup instead of a text
/// parse, re-partition, and re-fingerprint. The mapping is MAP_SHARED over
/// PROT_READ, so N server processes serving one arena file share one
/// physical copy in the page cache, and a graph larger than RAM
/// demand-pages instead of OOMing.
///
/// Lifecycle: GraphArena::Build writes the file; Open returns a
/// shared_ptr-held arena; graph() hands out view Graphs whose CSR planes
/// point into the mapping (or the decoded heap planes for kDeltaVarint)
/// and which co-own the arena, so the mapping lives exactly as long as the
/// last graph copy. munmap happens in the destructor.
class GraphArena : public std::enable_shared_from_this<GraphArena> {
 public:
  static constexpr uint32_t kMagic = 0x53'4C'47'41;  // "SLGA"
  static constexpr uint32_t kFormatVersion = 1;

  /// Serializes `graph` (+ its BuildRanges partition for
  /// `options.num_nodes`) to `path` via a uniquely named temp sibling and
  /// an atomic rename — a crash mid-build can only leave a temp file,
  /// never a torn arena. Forces the fingerprint computation (the cost the
  /// open side then skips forever).
  static Status Build(const Graph& graph, const std::string& path,
                      const ArenaBuildOptions& options = {});

  /// Maps `path` read-only and validates: magic, format version, codec,
  /// header checksum, section table geometry against the real file size
  /// (BEFORE any size-derived allocation), offset-plane monotonicity,
  /// range-partition coverage, and — per options — the payload checksum.
  /// kNotFound when the file does not exist; kCorruption with a distinct
  /// "unsupported arena codec" message for a codec byte this build does
  /// not know (a newer writer's file, not a damaged one).
  static Result<std::shared_ptr<GraphArena>> Open(
      const std::string& path, const ArenaOpenOptions& options = {});

  ~GraphArena();
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  /// A Graph whose CSR planes view this arena's memory and which keeps the
  /// arena (and with it the mapping) alive via its backing handle. Cheap:
  /// no allocation beyond the shared_ptr control blocks.
  Graph graph() const;

  /// The persisted ownership ranges (exactly DistGraph::BuildRanges output
  /// for num_nodes() at build time).
  const std::vector<VertexRange>& ranges() const { return ranges_; }

  uint64_t fingerprint() const { return header_.graph_fingerprint; }
  VertexId num_vertices() const { return header_.num_vertices; }
  EdgeId num_edges() const { return header_.num_edges; }
  int num_nodes() const { return static_cast<int>(header_.num_nodes); }
  bool symmetric() const { return (header_.traits & 1u) != 0; }
  bool weighted() const { return (header_.traits & 2u) != 0; }
  ArenaCodec codec() const {
    return static_cast<ArenaCodec>((header_.version >> 16) & 0xFFu);
  }
  const std::string& path() const { return path_; }

  /// Size of the mapping (the whole file).
  uint64_t file_bytes() const { return map_bytes_; }
  /// Private heap held by decoded planes (0 for kRaw — everything served
  /// from the shared page cache).
  uint64_t heap_bytes() const;

 private:
  GraphArena() = default;

  std::string path_;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  ArenaHeader header_;
  /// Plane pointers into the mapping (kRaw) or into the decoded vectors
  /// below (kDeltaVarint neighbor planes).
  const EdgeId* out_offsets_ = nullptr;
  const VertexId* out_neighbors_ = nullptr;
  const Weight* out_weights_ = nullptr;
  const EdgeId* in_offsets_ = nullptr;
  const VertexId* in_neighbors_ = nullptr;
  const Weight* in_weights_ = nullptr;
  std::vector<VertexId> decoded_out_;
  std::vector<VertexId> decoded_in_;
  std::vector<VertexRange> ranges_;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_ARENA_H_
