#include "slfe/graph/edge_list.h"

#include <algorithm>

namespace slfe {

size_t EdgeList::Deduplicate() {
  size_t before = edges_.size();
  // Drop self-loops first, then sort by (src, dst) and unique on the pair.
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
  // Sorting by (src, dst, weight) makes the surviving edge of each pair
  // the minimum-weight one — deterministic, and it keeps symmetrized
  // graphs weight-symmetric (both directions of a pair see the same
  // weight multiset, hence keep the same minimum).
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
  return before - edges_.size();
}

void EdgeList::Symmetrize() {
  size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    const Edge& e = edges_[i];
    edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
}

Status EdgeList::Validate() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return Status::OutOfRange("edge (" + std::to_string(e.src) + "," +
                                std::to_string(e.dst) +
                                ") exceeds num_vertices=" +
                                std::to_string(num_vertices_));
    }
  }
  return Status::OK();
}

}  // namespace slfe
