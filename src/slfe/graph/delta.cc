#include "slfe/graph/delta.h"

#include <string>
#include <unordered_set>

#include "slfe/graph/edge_list.h"

namespace slfe {

namespace {

/// (src, dst) folded into one 64-bit set key (VertexId is u32).
inline uint64_t PairKey(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

Result<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta,
                         GraphDeltaStats* stats) {
  GraphDeltaStats local;
  const VertexId base_n = base.num_vertices();

  std::unordered_set<uint64_t> erase_set;
  erase_set.reserve(delta.erase.size() * 2);
  for (const auto& [src, dst] : delta.erase) {
    if (src >= base_n || dst >= base_n) {
      return Status::InvalidArgument(
          "delta deletes edge (" + std::to_string(src) + ", " +
          std::to_string(dst) + ") outside the base graph (|V|=" +
          std::to_string(base_n) + ")");
    }
    erase_set.insert(PairKey(src, dst));
  }

  // Pass 1: the base's out-rows in order, deleted pairs filtered. This IS
  // the deterministic-order contract: FromEdges' counting sort is stable,
  // so survivors keep their relative row positions in the new CSR.
  EdgeList edges(base_n);
  edges.Reserve(base.num_edges() + delta.insert.size());
  std::unordered_set<uint64_t> present;
  present.reserve(base.num_edges() + delta.insert.size());
  std::unordered_set<uint64_t> erase_hit;
  erase_hit.reserve(erase_set.size());
  const Csr& out = base.out();
  for (VertexId v = 0; v < base_n; ++v) {
    for (EdgeId e = out.begin(v); e < out.end(v); ++e) {
      VertexId dst = out.neighbor(e);
      uint64_t key = PairKey(v, dst);
      if (erase_set.count(key) != 0) {
        ++local.edges_deleted;
        erase_hit.insert(key);
        continue;
      }
      edges.Add(v, dst, out.weight(e));
      present.insert(key);
    }
  }
  // Requested pairs that removed no copy never existed: counted, never an
  // error, so a client can replay a batch idempotently.
  local.missing_deletes = erase_set.size() - erase_hit.size();

  // Pass 2: insertions in batch order, duplicate pairs skipped (first
  // weight wins — matching EdgeList::Deduplicate's keep-first rule).
  for (const Edge& e : delta.insert) {
    uint64_t key = PairKey(e.src, e.dst);
    if (!present.insert(key).second) {
      ++local.duplicate_inserts;
      continue;
    }
    edges.Add(e.src, e.dst, e.weight);  // grows the vertex bound as needed
    ++local.edges_inserted;
  }

  if (stats != nullptr) *stats = local;
  return Graph::FromEdges(edges);
}

}  // namespace slfe
