#include "slfe/graph/loader.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "slfe/graph/arena.h"

namespace slfe {

namespace {
constexpr uint64_t kBinaryMagic = 0x534c464547524148ULL;  // "SLFEGRAH"

/// RAII stdio handle (the library avoids iostreams on data paths).
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() const { return f_; }
  bool ok() const { return f_ != nullptr; }

 private:
  std::FILE* f_;
};
}  // namespace

Result<EdgeList> LoadEdgeListText(const std::string& path) {
  File f(path, "r");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  EdgeList edges;
  char line[256];
  size_t lineno = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    unsigned long src, dst;
    double w = 1.0;
    int matched = std::sscanf(p, "%lu %lu %lf", &src, &dst, &w);
    if (matched < 2) {
      return Status::Corruption("malformed edge at " + path + ":" +
                                std::to_string(lineno));
    }
    edges.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst),
              static_cast<Weight>(w));
  }
  return edges;
}

Status SaveEdgeListText(const EdgeList& edges, const std::string& path) {
  File f(path, "w");
  if (!f.ok()) return Status::IOError("cannot open " + path + " for write");
  std::fprintf(f.get(), "# vertices=%u edges=%zu\n", edges.num_vertices(),
               edges.num_edges());
  for (const Edge& e : edges.edges()) {
    std::fprintf(f.get(), "%u %u %g\n", e.src, e.dst,
                 static_cast<double>(e.weight));
  }
  return Status::OK();
}

Result<EdgeList> LoadEdgeListBinary(const std::string& path) {
  File f(path, "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path);
  uint64_t header[3];
  if (std::fread(header, sizeof(uint64_t), 3, f.get()) != 3) {
    return Status::Corruption("short header in " + path);
  }
  if (header[0] != kBinaryMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  EdgeList edges(static_cast<VertexId>(header[1]));
  uint64_t num_edges = header[2];
  edges.Reserve(num_edges);
  struct Record {
    uint32_t src, dst;
    float weight;
  };
  std::vector<Record> buf(4096);
  uint64_t remaining = num_edges;
  while (remaining > 0) {
    size_t want = remaining < buf.size() ? remaining : buf.size();
    size_t got = std::fread(buf.data(), sizeof(Record), want, f.get());
    if (got == 0) return Status::Corruption("truncated edges in " + path);
    for (size_t i = 0; i < got; ++i) {
      edges.Add(buf[i].src, buf[i].dst, buf[i].weight);
    }
    remaining -= got;
  }
  // Preserve the original vertex bound even if larger than max endpoint + 1.
  edges.set_num_vertices(static_cast<VertexId>(header[1]));
  return edges;
}

Status SaveEdgeListBinary(const EdgeList& edges, const std::string& path) {
  File f(path, "wb");
  if (!f.ok()) return Status::IOError("cannot open " + path + " for write");
  uint64_t header[3] = {kBinaryMagic, edges.num_vertices(),
                        edges.num_edges()};
  if (std::fwrite(header, sizeof(uint64_t), 3, f.get()) != 3) {
    return Status::IOError("header write failed for " + path);
  }
  struct Record {
    uint32_t src, dst;
    float weight;
  };
  for (const Edge& e : edges.edges()) {
    Record r{e.src, e.dst, e.weight};
    if (std::fwrite(&r, sizeof(Record), 1, f.get()) != 1) {
      return Status::IOError("edge write failed for " + path);
    }
  }
  return Status::OK();
}

Result<Graph> LoadGraphAuto(const std::string& path) {
  uint64_t magic8 = 0;
  {
    File f(path, "rb");
    if (!f.ok()) return Status::IOError("cannot open " + path);
    // Short files fall through with magic8 == 0 and get the text parser's
    // (more informative) diagnostics.
    if (std::fread(&magic8, sizeof(magic8), 1, f.get()) != 1) magic8 = 0;
  }
  if (static_cast<uint32_t>(magic8) == GraphArena::kMagic) {
    Result<std::shared_ptr<GraphArena>> arena = GraphArena::Open(path);
    if (!arena.ok()) return arena.status();
    return arena.value()->graph();
  }
  Result<EdgeList> edges = magic8 == kBinaryMagic
                               ? LoadEdgeListBinary(path)
                               : LoadEdgeListText(path);
  if (!edges.ok()) return edges.status();
  return Graph::FromEdges(edges.value());
}

}  // namespace slfe
