#ifndef SLFE_GRAPH_LOADER_H_
#define SLFE_GRAPH_LOADER_H_

#include <string>

#include "slfe/common/status.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/graph.h"

namespace slfe {

/// Loads a whitespace-separated text edge list: one `src dst [weight]` per
/// line; `#`- or `%`-prefixed lines are comments. Missing weights default
/// to 1.
Result<EdgeList> LoadEdgeListText(const std::string& path);

/// Writes the text format produced above.
Status SaveEdgeListText(const EdgeList& edges, const std::string& path);

/// Binary format: little-endian header {magic, num_vertices, num_edges}
/// followed by packed {u32 src, u32 dst, f32 weight} records. Much faster
/// to load than text for the larger synthetic datasets.
Result<EdgeList> LoadEdgeListBinary(const std::string& path);
Status SaveEdgeListBinary(const EdgeList& edges, const std::string& path);

/// Loads a Graph from any on-disk format this library writes, sniffing the
/// leading magic: a graph arena (`*.sga`, GraphArena::kMagic) takes the
/// mmap fast path (map + validate, no parse, no re-fingerprint), a binary
/// edge list takes LoadEdgeListBinary, and anything else is parsed as a
/// text edge list. The arena path is how `slfe_cli --file=graph.sga` opens
/// in milliseconds what the text parser rebuilds in seconds.
Result<Graph> LoadGraphAuto(const std::string& path);

}  // namespace slfe

#endif  // SLFE_GRAPH_LOADER_H_
