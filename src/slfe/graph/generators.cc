#include "slfe/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "slfe/common/logging.h"
#include "slfe/common/random.h"

namespace slfe {

namespace {

VertexId NextPowerOfTwo(VertexId n) {
  VertexId p = 1;
  while (p < n) p <<= 1;
  return p;
}

float DrawWeight(Random& rng, float max_weight) {
  // Integral weights in [1, max_weight] keep min/max app results exactly
  // comparable across engines (no float summation order issues on paths).
  return 1.0f + static_cast<float>(rng.Uniform(
                    static_cast<uint64_t>(max_weight)));
}

}  // namespace

EdgeList GenerateRmat(const RmatOptions& options) {
  VertexId n = NextPowerOfTwo(options.num_vertices);
  int scale = 0;
  while ((VertexId{1} << scale) < n) ++scale;

  Random rng(options.seed);
  EdgeList edges(n);
  edges.Reserve(options.num_edges);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (EdgeId i = 0; i < options.num_edges; ++i) {
    VertexId src = 0, dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      // Add ±10% noise per level (standard R-MAT "smoothing") so the
      // generated graph is not perfectly self-similar.
      double r = rng.NextDouble();
      if (r < options.a) {
        // top-left: no bits set
      } else if (r < ab) {
        dst |= VertexId{1} << bit;
      } else if (r < abc) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    if (src == dst) {
      dst = static_cast<VertexId>((dst + 1) % n);  // avoid self-loop
      if (src == dst) continue;
    }
    float w = options.weighted ? DrawWeight(rng, options.max_weight) : 1.0f;
    edges.Add(src, dst, w);
  }
  return edges;
}

EdgeList GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                            uint64_t seed, bool weighted, float max_weight) {
  SLFE_CHECK_GE(num_vertices, 2u);
  Random rng(seed);
  EdgeList edges(num_vertices);
  edges.Reserve(num_edges);
  for (EdgeId i = 0; i < num_edges; ++i) {
    VertexId src = static_cast<VertexId>(rng.Uniform(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.Uniform(num_vertices));
    if (src == dst) dst = (dst + 1) % num_vertices;
    float w = weighted ? DrawWeight(rng, max_weight) : 1.0f;
    edges.Add(src, dst, w);
  }
  return edges;
}

EdgeList GenerateGrid(VertexId rows, VertexId cols, bool weighted,
                      uint64_t seed, float max_weight) {
  Random rng(seed);
  EdgeList edges(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      float w1 = weighted ? DrawWeight(rng, max_weight) : 1.0f;
      float w2 = weighted ? DrawWeight(rng, max_weight) : 1.0f;
      if (c + 1 < cols) {
        edges.Add(id(r, c), id(r, c + 1), w1);
        edges.Add(id(r, c + 1), id(r, c), w1);
      }
      if (r + 1 < rows) {
        edges.Add(id(r, c), id(r + 1, c), w2);
        edges.Add(id(r + 1, c), id(r, c), w2);
      }
    }
  }
  return edges;
}

EdgeList GenerateChain(VertexId num_vertices, bool weighted, uint64_t seed) {
  Random rng(seed);
  EdgeList edges(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    float w = weighted ? DrawWeight(rng, 16.0f) : 1.0f;
    edges.Add(v, v + 1, w);
  }
  return edges;
}

EdgeList GenerateStar(VertexId num_spokes) {
  EdgeList edges(num_spokes + 1);
  for (VertexId v = 1; v <= num_spokes; ++v) {
    edges.Add(0, v, 1.0f);
    edges.Add(v, 0, 1.0f);
  }
  return edges;
}

EdgeList GenerateComplete(VertexId num_vertices) {
  EdgeList edges(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u != v) edges.Add(u, v, 1.0f);
    }
  }
  return edges;
}

const std::vector<DatasetSpec>& ScaledDatasets() {
  // ~1/100-scale analogs of the paper's Table 4 (DESIGN.md §2). Degree skew
  // follows the dataset class: social graphs use the classic (.57,.19,.19)
  // quadrant weights; DI (folksonomy, avg degree 8.9) is sparser.
  static const std::vector<DatasetSpec>* kSpecs =
      new std::vector<DatasetSpec>{
          {"PK", 16384, 308000, 0.57, 0.19, 0.19, 101},
          {"OK", 32768, 1170000, 0.57, 0.19, 0.19, 102},
          {"LJ", 49152, 690000, 0.57, 0.19, 0.19, 103},
          {"WK", 65536, 2048000, 0.55, 0.20, 0.20, 104},
          {"DI", 131072, 1200000, 0.55, 0.22, 0.18, 105},
          {"ST", 65536, 490000, 0.57, 0.19, 0.19, 106},
          {"FS", 262144, 7200000, 0.57, 0.19, 0.19, 107},
          {"RMAT", 524288, 17000000, 0.57, 0.19, 0.19, 108},
      };
  return *kSpecs;
}

Result<DatasetSpec> FindDataset(const std::string& alias) {
  for (const DatasetSpec& s : ScaledDatasets()) {
    if (s.alias == alias) return s;
  }
  return Status::NotFound("unknown dataset alias: " + alias);
}

EdgeList MakeDataset(const DatasetSpec& spec, uint32_t scale_divisor) {
  SLFE_CHECK_GE(scale_divisor, 1u);
  RmatOptions opt;
  opt.num_vertices = std::max<VertexId>(64, spec.num_vertices / scale_divisor);
  opt.num_edges = std::max<EdgeId>(256, spec.num_edges / scale_divisor);
  opt.a = spec.rmat_a;
  opt.b = spec.rmat_b;
  opt.c = spec.rmat_c;
  opt.seed = spec.seed;
  opt.weighted = true;
  // Wide weight range: weighted shortest paths then take many more hops
  // than the unweighted depth, recreating the multi-update redundancy the
  // full-size datasets exhibit (paper Table 2).
  opt.max_weight = 256.0f;
  EdgeList edges = GenerateRmat(opt);
  edges.Deduplicate();
  return edges;
}

}  // namespace slfe
