#ifndef SLFE_GRAPH_DELTA_H_
#define SLFE_GRAPH_DELTA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// One batched topology mutation: edges to remove and edges to add,
/// applied atomically to an immutable Graph to produce the next version.
/// Application semantics are deterministic (ApplyDelta's contract), so a
/// delta replayed on equal base graphs yields bit-identical CSR planes —
/// the property the version differential tests and the guidance repair
/// path both depend on.
struct GraphDelta {
  /// Edges appended after the deletions, in batch order. Endpoints may
  /// name vertices >= |V|; the vertex set grows to cover them. An
  /// insertion whose (src, dst) pair already exists — in the post-deletion
  /// graph or earlier in this batch — is skipped (first weight wins).
  std::vector<Edge> insert;
  /// (src, dst) pairs to remove; EVERY parallel copy of a pair goes.
  /// Deleting a pair the graph does not carry is counted, not an error
  /// (idempotent deletes let clients retry a batch). Endpoints must be
  /// within the base graph's vertex range.
  std::vector<std::pair<VertexId, VertexId>> erase;

  bool empty() const { return insert.empty() && erase.empty(); }
  /// Total edge touches — the repair-vs-regenerate heuristic's numerator.
  size_t size() const { return insert.size() + erase.size(); }
};

/// What ApplyDelta actually did (the requested counts minus the skips).
struct GraphDeltaStats {
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;  ///< copies removed (parallel edges count each)
  uint64_t duplicate_inserts = 0;  ///< skipped: pair already present
  uint64_t missing_deletes = 0;    ///< requested pair was not in the graph
};

/// Applies `delta` to `base`, returning the next graph version. The base
/// is untouched (graphs are immutable); old-version views held by
/// in-flight jobs stay valid and unchanged.
///
/// Deterministic construction contract: the new edge list is the base's
/// out-CSR rows in order with deleted pairs filtered out, followed by the
/// surviving insertions in batch order; both CSR directions are rebuilt
/// from that list with the same stable counting sort Graph::FromEdges
/// uses. kInvalidArgument when a deletion names a vertex outside the base
/// graph (insertions may grow the vertex set, deletions cannot).
Result<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta,
                         GraphDeltaStats* stats = nullptr);

}  // namespace slfe

#endif  // SLFE_GRAPH_DELTA_H_
