#ifndef SLFE_GRAPH_GRAPH_H_
#define SLFE_GRAPH_GRAPH_H_

#include <utility>

#include "slfe/graph/csr.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/types.h"

namespace slfe {

/// An immutable directed graph held in both directions: CSR over
/// out-neighbors (push mode traverses this) and CSC over in-neighbors
/// (pull mode traverses this). This mirrors the "format data (e.g., CSR)"
/// stage of the SLFE preprocessing pipeline (paper Fig. 3).
class Graph {
 public:
  Graph() = default;

  /// Builds both adjacency directions from an edge list.
  static Graph FromEdges(const EdgeList& edges) {
    Graph g;
    g.num_vertices_ = edges.num_vertices();
    g.num_edges_ = edges.num_edges();
    g.out_ = Csr::FromEdgesBySource(edges);
    g.in_ = Csr::FromEdgesByDestination(edges);
    return g;
  }

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }

  /// Out-neighbor adjacency (successors).
  const Csr& out() const { return out_; }
  /// In-neighbor adjacency (predecessors).
  const Csr& in() const { return in_; }

  VertexId out_degree(VertexId v) const { return out_.degree(v); }
  VertexId in_degree(VertexId v) const { return in_.degree(v); }

 private:
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  Csr out_;
  Csr in_;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_GRAPH_H_
