#ifndef SLFE_GRAPH_GRAPH_H_
#define SLFE_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "slfe/common/fnv.h"
#include "slfe/graph/csr.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/types.h"

namespace slfe {

/// An immutable directed graph held in both directions: CSR over
/// out-neighbors (push mode traverses this) and CSC over in-neighbors
/// (pull mode traverses this). This mirrors the "format data (e.g., CSR)"
/// stage of the SLFE preprocessing pipeline (paper Fig. 3).
class Graph {
 public:
  Graph() = default;

  /// Builds both adjacency directions from an edge list.
  static Graph FromEdges(const EdgeList& edges) {
    Graph g;
    g.num_vertices_ = edges.num_vertices();
    g.num_edges_ = edges.num_edges();
    g.out_ = Csr::FromEdgesBySource(edges);
    g.in_ = Csr::FromEdgesByDestination(edges);
    return g;
  }

  /// Assembles a graph from pre-built adjacency — the GraphArena's path
  /// for serving an mmap'd file. `backing` keeps whatever owns the CSR
  /// planes (the mapped arena) alive for the lifetime of this graph and
  /// every copy of it. A non-zero `fingerprint` pre-seeds the memo, so a
  /// mapped graph never pays the O(V+E) hash pass the arena already paid
  /// at build time (pass 0 to keep lazy computation).
  static Graph FromParts(VertexId num_vertices, EdgeId num_edges, Csr out,
                         Csr in, uint64_t fingerprint,
                         std::shared_ptr<const void> backing) {
    Graph g;
    g.num_vertices_ = num_vertices;
    g.num_edges_ = num_edges;
    g.out_ = std::move(out);
    g.in_ = std::move(in);
    g.fingerprint_ = fingerprint;
    g.backing_ = std::move(backing);
    return g;
  }

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }

  /// 64-bit FNV-1a digest of the out-adjacency structure (offsets and
  /// neighbor lists). Two graphs with equal fingerprints have, modulo
  /// hash collisions, identical topology — the property RR guidance
  /// depends on (edge weights are deliberately excluded: guidance treats
  /// every weight as 1). GuidanceCache keys entries by this digest, so
  /// lookups stay O(|roots|) instead of re-hashing O(|E|) per job.
  ///
  /// Computed lazily on first call and memoized, so graphs that never use
  /// guidance (baselines, shm/gas/ooc sweeps) skip the O(V+E) hash pass.
  /// The graph is immutable, so racing first calls write the same value
  /// (relaxed atomics keep the memoization race benign).
  uint64_t fingerprint() const {
    uint64_t f = __atomic_load_n(&fingerprint_, __ATOMIC_RELAXED);
    if (f == 0) {
      f = ComputeFingerprint(*this);
      __atomic_store_n(&fingerprint_, f, __ATOMIC_RELAXED);
    }
    return f;
  }

  /// Out-neighbor adjacency (successors).
  const Csr& out() const { return out_; }
  /// In-neighbor adjacency (predecessors).
  const Csr& in() const { return in_; }

  VertexId out_degree(VertexId v) const { return out_.degree(v); }
  VertexId in_degree(VertexId v) const { return in_.degree(v); }

 private:
  static uint64_t ComputeFingerprint(const Graph& g) {
    uint64_t h = kFnvBasis;
    h = Fnv1aMix(h, g.num_vertices_);
    h = Fnv1aMix(h, g.num_edges_);
    for (EdgeId o : g.out_.offsets()) h = Fnv1aMix(h, o);
    for (VertexId v : g.out_.neighbors()) h = Fnv1aMix(h, v);
    return h != 0 ? h : 1;  // 0 is the "not yet computed" sentinel
  }

  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  /// Lazily memoized by fingerprint(); 0 = not yet computed.
  mutable uint64_t fingerprint_ = 0;
  Csr out_;
  Csr in_;
  /// Keeps externally owned CSR planes alive when the Csrs are views
  /// (Graph::FromParts over a mapped arena); null for owned graphs.
  std::shared_ptr<const void> backing_;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_GRAPH_H_
