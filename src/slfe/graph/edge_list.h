#ifndef SLFE_GRAPH_EDGE_LIST_H_
#define SLFE_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/types.h"

namespace slfe {

/// An unordered collection of directed edges plus the vertex-count bound.
/// This is the interchange format between loaders/generators and the CSR
/// builder.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  /// Grows the vertex-count bound to cover `v`.
  void CoverVertex(VertexId v) {
    if (v >= num_vertices_) num_vertices_ = v + 1;
  }
  void set_num_vertices(VertexId n) { num_vertices_ = n; }

  /// Appends an edge; expands the vertex bound as needed.
  void Add(VertexId src, VertexId dst, Weight weight = 1.0f) {
    edges_.push_back(Edge{src, dst, weight});
    CoverVertex(src);
    CoverVertex(dst);
  }

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Removes self-loops and duplicate (src,dst) pairs, keeping the first
  /// occurrence of each pair. Returns the number of edges removed.
  size_t Deduplicate();

  /// Appends the reverse of every edge (making the graph symmetric).
  /// Undirected applications (CC) expect a symmetrized input.
  void Symmetrize();

  /// Validates that all endpoints are within [0, num_vertices).
  Status Validate() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_EDGE_LIST_H_
