#include "slfe/graph/csr.h"

namespace slfe {

Csr Csr::FromEdgesBySource(const EdgeList& edges) {
  return Build(edges, /*by_source=*/true);
}

Csr Csr::FromEdgesByDestination(const EdgeList& edges) {
  return Build(edges, /*by_source=*/false);
}

Csr Csr::FromPlanes(const EdgeId* offsets, VertexId num_vertices,
                    const VertexId* neighbors, const Weight* weights,
                    EdgeId num_edges) {
  Csr csr;
  csr.offsets_ = offsets;
  csr.neighbors_ = neighbors;
  csr.weights_ = weights;
  csr.num_vertices_ = num_vertices;
  csr.num_edges_ = num_edges;
  return csr;
}

Csr Csr::Build(const EdgeList& edges, bool by_source) {
  auto planes = std::make_shared<OwnedPlanes>();
  VertexId n = edges.num_vertices();
  planes->offsets.assign(static_cast<size_t>(n) + 1, 0);
  planes->neighbors.resize(edges.num_edges());
  planes->weights.resize(edges.num_edges());

  // Counting sort by row key: two passes over the edge list.
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    ++planes->offsets[key + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    planes->offsets[v + 1] += planes->offsets[v];
  }

  std::vector<EdgeId> cursor(planes->offsets.begin(),
                             planes->offsets.end() - 1);
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    VertexId other = by_source ? e.dst : e.src;
    EdgeId slot = cursor[key]++;
    planes->neighbors[slot] = other;
    planes->weights[slot] = e.weight;
  }

  Csr csr;
  csr.offsets_ = planes->offsets.data();
  csr.neighbors_ = planes->neighbors.data();
  csr.weights_ = planes->weights.data();
  csr.num_vertices_ = n;
  csr.num_edges_ = edges.num_edges();
  csr.owned_ = std::move(planes);
  return csr;
}

}  // namespace slfe
