#include "slfe/graph/csr.h"

namespace slfe {

Csr Csr::FromEdgesBySource(const EdgeList& edges) {
  return Build(edges, /*by_source=*/true);
}

Csr Csr::FromEdgesByDestination(const EdgeList& edges) {
  return Build(edges, /*by_source=*/false);
}

Csr Csr::Build(const EdgeList& edges, bool by_source) {
  Csr csr;
  VertexId n = edges.num_vertices();
  csr.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  csr.neighbors_.resize(edges.num_edges());
  csr.weights_.resize(edges.num_edges());

  // Counting sort by row key: two passes over the edge list.
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    ++csr.offsets_[key + 1];
  }
  for (size_t v = 0; v < n; ++v) csr.offsets_[v + 1] += csr.offsets_[v];

  std::vector<EdgeId> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    VertexId key = by_source ? e.src : e.dst;
    VertexId other = by_source ? e.dst : e.src;
    EdgeId slot = cursor[key]++;
    csr.neighbors_[slot] = other;
    csr.weights_[slot] = e.weight;
  }
  return csr;
}

}  // namespace slfe
