#include "slfe/graph/arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <utility>

#include "slfe/common/fnv.h"
#include "slfe/common/scoped_file.h"

namespace slfe {

namespace {

constexpr size_t kSectionAlign = 64;

constexpr size_t kSealedHeaderBytes = offsetof(ArenaHeader, header_checksum);

uint64_t AlignUp(uint64_t offset) {
  return (offset + (kSectionAlign - 1)) & ~static_cast<uint64_t>(
                                              kSectionAlign - 1);
}

/// Zigzag-encodes the per-row neighbor deltas of `csr` (first delta is
/// against 0). Neighbors within a CSR row keep edge-list insertion order —
/// they are NOT sorted — so deltas can be negative; zigzag keeps small
/// magnitudes small either way.
std::vector<uint8_t> EncodeDeltaVarint(const Csr& csr) {
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>(csr.num_edges()) * 2);
  VertexId n = csr.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    int64_t prev = 0;
    for (EdgeId e = csr.begin(v); e < csr.end(v); ++e) {
      int64_t value = static_cast<int64_t>(csr.neighbor(e));
      int64_t delta = value - prev;
      uint64_t zz = (static_cast<uint64_t>(delta) << 1) ^
                    static_cast<uint64_t>(delta >> 63);
      while (zz >= 0x80) {
        out.push_back(static_cast<uint8_t>(zz) | 0x80);
        zz >>= 7;
      }
      out.push_back(static_cast<uint8_t>(zz));
      prev = value;
    }
  }
  return out;
}

/// Inverse of EncodeDeltaVarint, driven by the (already validated) offsets
/// plane. Every byte must be consumed and every decoded neighbor must be a
/// valid vertex — a failed decode is a corrupt or foreign file, never UB.
Status DecodeDeltaVarint(const uint8_t* data, uint64_t bytes,
                         const EdgeId* offsets, VertexId num_vertices,
                         VertexId max_vertex_bound,
                         std::vector<VertexId>* out) {
  const uint8_t* p = data;
  const uint8_t* end = data + bytes;
  for (VertexId v = 0; v < num_vertices; ++v) {
    int64_t prev = 0;
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      uint64_t zz = 0;
      int shift = 0;
      while (true) {
        if (p == end) return Status::Corruption("truncated varint plane");
        uint8_t b = *p++;
        zz |= static_cast<uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0) break;
        shift += 7;
        if (shift > 63) return Status::Corruption("varint overflow");
      }
      int64_t delta = static_cast<int64_t>(zz >> 1) ^
                      -static_cast<int64_t>(zz & 1);
      int64_t value = prev + delta;
      if (value < 0 || value >= static_cast<int64_t>(max_vertex_bound)) {
        return Status::Corruption("decoded neighbor out of range");
      }
      (*out)[e] = static_cast<VertexId>(value);
      prev = value;
    }
  }
  if (p != end) return Status::Corruption("trailing bytes in varint plane");
  return Status::OK();
}

/// Offsets planes index every traversal loop, so a malformed one is
/// remote-code-adjacent, not merely wrong: validate shape before any use
/// (including before driving the varint decoder with it).
Status ValidateOffsets(const EdgeId* offsets, VertexId num_vertices,
                       EdgeId num_edges) {
  if (offsets[0] != 0) return Status::Corruption("offsets[0] != 0");
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      return Status::Corruption("offsets plane not monotonic");
    }
  }
  if (offsets[num_vertices] != num_edges) {
    return Status::Corruption("offsets[|V|] != |E|");
  }
  return Status::OK();
}

/// Word-granularity FNV over the section payloads in table order (the
/// inter-section alignment padding is excluded — it is not data). The
/// word fold keeps warm-start verification of multi-GB arenas at memory
/// bandwidth rather than byte-loop speed.
uint64_t PayloadChecksum(const uint8_t* base, const ArenaHeader& header) {
  uint64_t h = kFnvBasis;
  for (const ArenaSection& s : header.sections) {
    h = Fnv1aWords(base + s.offset, s.bytes, h);
  }
  return h;
}

}  // namespace

uint64_t ArenaHeaderChecksum(const ArenaHeader& header) {
  return Fnv1aBytes(&header, kSealedHeaderBytes, kFnvBasis);
}

Status GraphArena::Build(const Graph& graph, const std::string& path,
                         const ArenaBuildOptions& options) {
  if (options.num_nodes < 1) {
    return Status::InvalidArgument("arena num_nodes must be >= 1");
  }
  VertexId n = graph.num_vertices();
  EdgeId m = graph.num_edges();
  ChunkPartitioner partitioner;
  std::vector<VertexRange> ranges =
      partitioner.Partition(graph, static_cast<size_t>(options.num_nodes));

  // Codec-dependent neighbor planes; everything else is always raw.
  std::vector<uint8_t> out_nbr_encoded;
  std::vector<uint8_t> in_nbr_encoded;
  const void* out_nbr_data = graph.out().neighbors().data();
  const void* in_nbr_data = graph.in().neighbors().data();
  uint64_t out_nbr_bytes = m * sizeof(VertexId);
  uint64_t in_nbr_bytes = m * sizeof(VertexId);
  if (options.codec == ArenaCodec::kDeltaVarint) {
    out_nbr_encoded = EncodeDeltaVarint(graph.out());
    in_nbr_encoded = EncodeDeltaVarint(graph.in());
    out_nbr_data = out_nbr_encoded.data();
    in_nbr_data = in_nbr_encoded.data();
    out_nbr_bytes = out_nbr_encoded.size();
    in_nbr_bytes = in_nbr_encoded.size();
  } else if (options.codec != ArenaCodec::kRaw) {
    return Status::InvalidArgument("unsupported arena codec " +
                                   std::to_string(static_cast<unsigned>(
                                       options.codec)));
  }

  struct Plane {
    const void* data;
    uint64_t bytes;
  };
  const Plane planes[kArenaSectionCount] = {
      {graph.out().offsets().data(), (static_cast<uint64_t>(n) + 1) *
                                         sizeof(EdgeId)},
      {out_nbr_data, out_nbr_bytes},
      {graph.out().weights().data(), m * sizeof(Weight)},
      {graph.in().offsets().data(), (static_cast<uint64_t>(n) + 1) *
                                        sizeof(EdgeId)},
      {in_nbr_data, in_nbr_bytes},
      {graph.in().weights().data(), m * sizeof(Weight)},
      {ranges.data(), ranges.size() * sizeof(VertexRange)},
  };
  static_assert(sizeof(VertexRange) == 2 * sizeof(VertexId),
                "VertexRange must serialize without padding");

  ArenaHeader header;
  header.magic = kMagic;
  header.version = kFormatVersion |
                   (static_cast<uint32_t>(options.codec) << 16);
  header.graph_fingerprint = graph.fingerprint();
  header.num_edges = m;
  header.num_vertices = n;
  header.num_nodes = static_cast<uint32_t>(options.num_nodes);
  header.traits = (options.symmetric ? 1u : 0u) |
                  (options.weighted ? 2u : 0u);
  uint64_t offset = sizeof(ArenaHeader);
  for (uint32_t i = 0; i < kArenaSectionCount; ++i) {
    offset = AlignUp(offset);
    header.sections[i] = ArenaSection{offset, planes[i].bytes};
    offset += planes[i].bytes;
  }
  uint64_t h = kFnvBasis;
  for (uint32_t i = 0; i < kArenaSectionCount; ++i) {
    h = Fnv1aWords(planes[i].data, planes[i].bytes, h);
  }
  header.payload_checksum = h;
  header.header_checksum = ArenaHeaderChecksum(header);

  // Same crash discipline as GuidanceStore::Save: unique temp name (the
  // arena dir can be shared by multiple building processes), rename into
  // place only after a complete write.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(tmp_counter.fetch_add(1));
  {
    ScopedFile f(tmp, "wb");
    if (!f.ok()) return Status::IOError("cannot create " + tmp);
    auto write_all = [&](const void* data, uint64_t bytes) {
      return bytes == 0 || std::fwrite(data, 1, bytes, f.get()) == bytes;
    };
    bool ok = write_all(&header, sizeof(header));
    uint64_t written = sizeof(header);
    static const char kZeros[kSectionAlign] = {};
    for (uint32_t i = 0; ok && i < kArenaSectionCount; ++i) {
      ok = write_all(kZeros, header.sections[i].offset - written) &&
           write_all(planes[i].data, planes[i].bytes);
      written = header.sections[i].offset + header.sections[i].bytes;
    }
    if (!ok) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " into place");
  }
  return Status::OK();
}

Result<std::shared_ptr<GraphArena>> GraphArena::Open(
    const std::string& path, const ArenaOpenOptions& options) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("no graph arena at " + path);
  struct ::stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < sizeof(ArenaHeader)) {
    ::close(fd);
    return Status::Corruption(path + ": truncated header");
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) return Status::IOError("cannot mmap " + path);

  auto arena = std::shared_ptr<GraphArena>(new GraphArena());
  arena->path_ = path;
  arena->map_ = map;
  arena->map_bytes_ = file_bytes;
  const uint8_t* base = static_cast<const uint8_t*>(map);
  std::memcpy(&arena->header_, base, sizeof(ArenaHeader));
  const ArenaHeader& header = arena->header_;

  auto corrupt = [&](const std::string& why) {
    return Status::Corruption(path + ": " + why);
  };
  if (header.magic != kMagic) return corrupt("bad magic");
  // Everything below trusts header fields, so seal-check the header first:
  // a single flipped byte must fail here, not as a confusing downstream
  // geometry error.
  if (header.header_checksum != ArenaHeaderChecksum(header)) {
    return corrupt("header checksum mismatch");
  }
  if ((header.version & 0xFFFFu) != kFormatVersion) {
    return corrupt("unsupported format version " +
                   std::to_string(header.version & 0xFFFFu));
  }
  uint32_t codec_byte = (header.version >> 16) & 0xFFu;
  if (codec_byte > static_cast<uint32_t>(ArenaCodec::kDeltaVarint) ||
      (header.version >> 24) != 0) {
    // A newer writer's codec, not damage — distinct from checksum failures
    // so operators know to upgrade rather than delete.
    return corrupt("unsupported arena codec " + std::to_string(codec_byte));
  }
  if (header.reserved != 0) return corrupt("reserved field not zero");
  if (header.num_nodes < 1) return corrupt("num_nodes < 1");

  // Section geometry against the REAL file size before any header-derived
  // allocation or dereference. Sections must be in order, aligned, and the
  // last must end exactly at EOF (no trailing garbage).
  VertexId n = header.num_vertices;
  EdgeId m = header.num_edges;
  uint64_t expect_offsets = (static_cast<uint64_t>(n) + 1) * sizeof(EdgeId);
  uint64_t expected_bytes[kArenaSectionCount] = {
      expect_offsets,
      codec_byte == 0 ? m * sizeof(VertexId) : header.sections[1].bytes,
      m * sizeof(Weight),
      expect_offsets,
      codec_byte == 0 ? m * sizeof(VertexId) : header.sections[4].bytes,
      m * sizeof(Weight),
      static_cast<uint64_t>(header.num_nodes) * sizeof(VertexRange),
  };
  uint64_t cursor = sizeof(ArenaHeader);
  for (uint32_t i = 0; i < kArenaSectionCount; ++i) {
    const ArenaSection& s = header.sections[i];
    if (s.offset != AlignUp(cursor) || s.bytes != expected_bytes[i] ||
        s.offset > file_bytes || file_bytes - s.offset < s.bytes) {
      return corrupt("section table inconsistent with file size");
    }
    // Varint planes are bounded by the worst case (5 bytes per neighbor);
    // anything larger cannot have come from the encoder.
    if (codec_byte == 1 && (i == kArenaOutNeighbors ||
                            i == kArenaInNeighbors) &&
        s.bytes > m * 5) {
      return corrupt("varint plane larger than worst case");
    }
    cursor = s.offset + s.bytes;
  }
  if (cursor != file_bytes) return corrupt("trailing bytes after sections");

  if (options.verify_payload &&
      PayloadChecksum(base, header) != header.payload_checksum) {
    return corrupt("payload checksum mismatch");
  }

  auto section_ptr = [&](uint32_t i) {
    return base + header.sections[i].offset;
  };
  arena->out_offsets_ =
      reinterpret_cast<const EdgeId*>(section_ptr(kArenaOutOffsets));
  arena->in_offsets_ =
      reinterpret_cast<const EdgeId*>(section_ptr(kArenaInOffsets));
  SLFE_RETURN_IF_ERROR(ValidateOffsets(arena->out_offsets_, n, m));
  SLFE_RETURN_IF_ERROR(ValidateOffsets(arena->in_offsets_, n, m));
  arena->out_weights_ =
      reinterpret_cast<const Weight*>(section_ptr(kArenaOutWeights));
  arena->in_weights_ =
      reinterpret_cast<const Weight*>(section_ptr(kArenaInWeights));

  if (codec_byte == static_cast<uint32_t>(ArenaCodec::kDeltaVarint)) {
    arena->decoded_out_.resize(m);
    arena->decoded_in_.resize(m);
    SLFE_RETURN_IF_ERROR(DecodeDeltaVarint(
        section_ptr(kArenaOutNeighbors), header.sections[1].bytes,
        arena->out_offsets_, n, n, &arena->decoded_out_));
    SLFE_RETURN_IF_ERROR(DecodeDeltaVarint(
        section_ptr(kArenaInNeighbors), header.sections[4].bytes,
        arena->in_offsets_, n, n, &arena->decoded_in_));
    arena->out_neighbors_ = arena->decoded_out_.data();
    arena->in_neighbors_ = arena->decoded_in_.data();
  } else {
    arena->out_neighbors_ =
        reinterpret_cast<const VertexId*>(section_ptr(kArenaOutNeighbors));
    arena->in_neighbors_ =
        reinterpret_cast<const VertexId*>(section_ptr(kArenaInNeighbors));
  }

  const VertexRange* ranges =
      reinterpret_cast<const VertexRange*>(section_ptr(kArenaRanges));
  arena->ranges_.assign(ranges, ranges + header.num_nodes);
  SLFE_RETURN_IF_ERROR(
      ChunkPartitioner::ValidatePartition(arena->ranges_, n));
  return arena;
}

GraphArena::~GraphArena() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

Graph GraphArena::graph() const {
  VertexId n = header_.num_vertices;
  EdgeId m = header_.num_edges;
  Csr out = Csr::FromPlanes(out_offsets_, n, out_neighbors_, out_weights_, m);
  Csr in = Csr::FromPlanes(in_offsets_, n, in_neighbors_, in_weights_, m);
  return Graph::FromParts(n, m, std::move(out), std::move(in),
                          header_.graph_fingerprint, shared_from_this());
}

uint64_t GraphArena::heap_bytes() const {
  return (decoded_out_.size() + decoded_in_.size()) * sizeof(VertexId);
}

}  // namespace slfe
