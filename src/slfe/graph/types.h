#ifndef SLFE_GRAPH_TYPES_H_
#define SLFE_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace slfe {

/// Vertex identifier. 32 bits covers the paper's largest simulated graph
/// (524k vertices) with ample headroom; widen here if >4B vertices needed.
using VertexId = uint32_t;

/// Edge index into CSR arrays. 64 bits: edge counts exceed 2^32 in the
/// paper's full-scale datasets.
using EdgeId = uint64_t;

/// Edge weight type shared by all weighted applications.
using Weight = float;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// One directed edge, optionally weighted (weight defaults to 1).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1.0f;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

}  // namespace slfe

#endif  // SLFE_GRAPH_TYPES_H_
