#ifndef SLFE_GRAPH_CSR_H_
#define SLFE_GRAPH_CSR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "slfe/common/span.h"
#include "slfe/common/status.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Compressed sparse row adjacency: for vertex v, its neighbors (and edge
/// weights) live at indices [offsets[v], offsets[v+1]). Depending on how it
/// was built this stores out-neighbors (CSR proper) or in-neighbors (CSC).
///
/// Storage comes in two flavors behind one representation: FromEdges*
/// builds owned heap planes (shared across copies — the CSR is immutable),
/// while FromPlanes views externally owned memory, which is how a
/// GraphArena serves an mmap'd file with zero copies. The hot accessors
/// (begin/end/neighbor/weight) read raw pointers either way, so view mode
/// costs the traversal loops nothing.
class Csr {
 public:
  Csr() = default;

  /// Builds out-neighbor adjacency (row = src) from an edge list.
  static Csr FromEdgesBySource(const EdgeList& edges);

  /// Builds in-neighbor adjacency (row = dst) from an edge list.
  static Csr FromEdgesByDestination(const EdgeList& edges);

  /// Zero-copy view over externally owned planes: `offsets` has
  /// num_vertices+1 entries, `neighbors` and `weights` have num_edges. The
  /// planes must outlive every copy of the returned Csr — Graph::FromParts
  /// pairs a view Csr with a backing handle that keeps the owner (the
  /// mapped arena) alive.
  static Csr FromPlanes(const EdgeId* offsets, VertexId num_vertices,
                        const VertexId* neighbors, const Weight* weights,
                        EdgeId num_edges);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return num_edges_; }

  EdgeId begin(VertexId v) const { return offsets_[v]; }
  EdgeId end(VertexId v) const { return offsets_[v + 1]; }
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(end(v) - begin(v));
  }

  VertexId neighbor(EdgeId e) const { return neighbors_[e]; }
  Weight weight(EdgeId e) const { return weights_[e]; }

  /// Invokes fn(neighbor, weight) for each adjacent edge of v.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    for (EdgeId e = begin(v); e < end(v); ++e) fn(neighbors_[e], weights_[e]);
  }

  ConstSpan<EdgeId> offsets() const {
    return {offsets_,
            offsets_ == nullptr ? 0 : static_cast<size_t>(num_vertices_) + 1};
  }
  ConstSpan<VertexId> neighbors() const {
    return {neighbors_, static_cast<size_t>(num_edges_)};
  }
  ConstSpan<Weight> weights() const {
    return {weights_, static_cast<size_t>(num_edges_)};
  }

 private:
  /// Heap storage for the owned flavor. Held by shared_ptr so copies of a
  /// Csr share planes (cheap, and the raw pointers below stay valid across
  /// copies/moves without a rebind step).
  struct OwnedPlanes {
    std::vector<EdgeId> offsets;      // size |V|+1
    std::vector<VertexId> neighbors;  // size |E|
    std::vector<Weight> weights;      // size |E|
  };

  static Csr Build(const EdgeList& edges, bool by_source);

  std::shared_ptr<const OwnedPlanes> owned_;  // null in view mode
  const EdgeId* offsets_ = nullptr;
  const VertexId* neighbors_ = nullptr;
  const Weight* weights_ = nullptr;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
};

}  // namespace slfe

#endif  // SLFE_GRAPH_CSR_H_
