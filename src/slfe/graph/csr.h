#ifndef SLFE_GRAPH_CSR_H_
#define SLFE_GRAPH_CSR_H_

#include <cstddef>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Compressed sparse row adjacency: for vertex v, its neighbors (and edge
/// weights) live at indices [offsets[v], offsets[v+1]). Depending on how it
/// was built this stores out-neighbors (CSR proper) or in-neighbors (CSC).
class Csr {
 public:
  Csr() = default;

  /// Builds out-neighbor adjacency (row = src) from an edge list.
  static Csr FromEdgesBySource(const EdgeList& edges);

  /// Builds in-neighbor adjacency (row = dst) from an edge list.
  static Csr FromEdgesByDestination(const EdgeList& edges);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const { return offsets_.empty() ? 0 : offsets_.back(); }

  EdgeId begin(VertexId v) const { return offsets_[v]; }
  EdgeId end(VertexId v) const { return offsets_[v + 1]; }
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(end(v) - begin(v));
  }

  VertexId neighbor(EdgeId e) const { return neighbors_[e]; }
  Weight weight(EdgeId e) const { return weights_[e]; }

  /// Invokes fn(neighbor, weight) for each adjacent edge of v.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    for (EdgeId e = begin(v); e < end(v); ++e) fn(neighbors_[e], weights_[e]);
  }

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<VertexId>& neighbors() const { return neighbors_; }
  const std::vector<Weight>& weights() const { return weights_; }

 private:
  static Csr Build(const EdgeList& edges, bool by_source);

  std::vector<EdgeId> offsets_;      // size |V|+1
  std::vector<VertexId> neighbors_;  // size |E|
  std::vector<Weight> weights_;      // size |E|
};

}  // namespace slfe

#endif  // SLFE_GRAPH_CSR_H_
