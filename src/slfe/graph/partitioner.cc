#include "slfe/graph/partitioner.h"

#include <algorithm>

#include "slfe/common/logging.h"

namespace slfe {

std::vector<VertexRange> ChunkPartitioner::Partition(const Graph& graph,
                                                     size_t num_parts) const {
  SLFE_CHECK_GE(num_parts, 1u);
  VertexId n = graph.num_vertices();
  std::vector<VertexRange> ranges(num_parts);

  double total_work = 0;
  for (VertexId v = 0; v < n; ++v) {
    total_work += options_.alpha * graph.out_degree(v) + 1.0;
  }
  double per_part = total_work / static_cast<double>(num_parts);

  VertexId cursor = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    ranges[p].begin = cursor;
    if (p + 1 == num_parts) {
      cursor = n;  // last part absorbs the remainder
    } else {
      double acc = 0;
      while (cursor < n && acc < per_part) {
        acc += options_.alpha * graph.out_degree(cursor) + 1.0;
        ++cursor;
      }
    }
    ranges[p].end = cursor;
  }
  return ranges;
}

size_t ChunkPartitioner::OwnerOf(const std::vector<VertexRange>& ranges,
                                 VertexId v) {
  // Binary search over range begins.
  size_t lo = 0, hi = ranges.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (ranges[mid].begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status ChunkPartitioner::ValidatePartition(
    const std::vector<VertexRange>& ranges, VertexId n) {
  if (ranges.empty()) return Status::InvalidArgument("no ranges");
  if (ranges.front().begin != 0) {
    return Status::Corruption("first range does not start at 0");
  }
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].end < ranges[i].begin) {
      return Status::Corruption("inverted range at index " +
                                std::to_string(i));
    }
    if (i + 1 < ranges.size() && ranges[i].end != ranges[i + 1].begin) {
      return Status::Corruption("gap between ranges " + std::to_string(i) +
                                " and " + std::to_string(i + 1));
    }
  }
  if (ranges.back().end != n) {
    return Status::Corruption("ranges do not cover all vertices");
  }
  return Status::OK();
}

double ChunkPartitioner::EdgeImbalance(
    const Graph& graph, const std::vector<VertexRange>& ranges) {
  if (graph.num_edges() == 0) return 1.0;
  double ideal = static_cast<double>(graph.num_edges()) /
                 static_cast<double>(ranges.size());
  double worst = 0;
  for (const VertexRange& r : ranges) {
    EdgeId edges = 0;
    for (VertexId v = r.begin; v < r.end; ++v) edges += graph.out_degree(v);
    worst = std::max(worst, static_cast<double>(edges) / ideal);
  }
  return worst;
}

}  // namespace slfe
