#ifndef SLFE_GRAPH_DEGREE_STATS_H_
#define SLFE_GRAPH_DEGREE_STATS_H_

#include <cstdint>

#include "slfe/graph/graph.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Degree distribution summary for a graph — used by the dataset
/// generators' sanity tests and by the hybrid-cut (PowerLyra-style)
/// partitioner's high-degree threshold selection.
struct DegreeStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_out_degree = 0;
  VertexId max_out_degree = 0;
  VertexId max_in_degree = 0;
  VertexId zero_out_degree = 0;  ///< sink count
  VertexId zero_in_degree = 0;   ///< source count
  /// Fraction of edges incident to the top 1% highest-out-degree vertices —
  /// a cheap skewness proxy (power-law graphs score far above uniform).
  double top1pct_edge_share = 0;
};

/// Computes the summary in O(|V| log |V|).
DegreeStats ComputeDegreeStats(const Graph& graph);

}  // namespace slfe

#endif  // SLFE_GRAPH_DEGREE_STATS_H_
