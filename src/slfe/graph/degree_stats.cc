#include "slfe/graph/degree_stats.h"

#include <algorithm>
#include <vector>

namespace slfe {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  if (stats.num_vertices == 0) return stats;

  std::vector<VertexId> out_degrees(stats.num_vertices);
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    VertexId od = graph.out_degree(v);
    VertexId id = graph.in_degree(v);
    out_degrees[v] = od;
    stats.max_out_degree = std::max(stats.max_out_degree, od);
    stats.max_in_degree = std::max(stats.max_in_degree, id);
    if (od == 0) ++stats.zero_out_degree;
    if (id == 0) ++stats.zero_in_degree;
  }
  stats.avg_out_degree = static_cast<double>(stats.num_edges) /
                         static_cast<double>(stats.num_vertices);

  std::sort(out_degrees.begin(), out_degrees.end(),
            std::greater<VertexId>());
  size_t top = std::max<size_t>(1, out_degrees.size() / 100);
  EdgeId top_edges = 0;
  for (size_t i = 0; i < top; ++i) top_edges += out_degrees[i];
  if (stats.num_edges > 0) {
    stats.top1pct_edge_share =
        static_cast<double>(top_edges) / static_cast<double>(stats.num_edges);
  }
  return stats;
}

}  // namespace slfe
