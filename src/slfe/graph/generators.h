#ifndef SLFE_GRAPH_GENERATORS_H_
#define SLFE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "slfe/common/status.h"
#include "slfe/graph/edge_list.h"
#include "slfe/graph/types.h"

namespace slfe {

/// Parameters for the recursive-matrix (R-MAT) generator used to synthesize
/// power-law graphs that stand in for the paper's SNAP/KONECT datasets.
struct RmatOptions {
  VertexId num_vertices = 1 << 14;  ///< rounded up to a power of two
  EdgeId num_edges = 1 << 18;
  double a = 0.57;  ///< recursive quadrant probabilities (a+b+c+d = 1)
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
  bool weighted = false;   ///< random weights in [1, max_weight]
  float max_weight = 64.0f;
};

/// Generates an R-MAT graph (Chakrabarti et al.). Deterministic in `seed`.
EdgeList GenerateRmat(const RmatOptions& options);

/// Erdos-Renyi G(n, m): m directed edges drawn uniformly (self-loops
/// skipped). Deterministic in `seed`.
EdgeList GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                            uint64_t seed = 1, bool weighted = false,
                            float max_weight = 64.0f);

/// 2D grid of rows x cols vertices with 4-neighbor bidirectional edges —
/// a road-network-like topology with large diameter (deep propagation
/// levels, the adversarial case for "start late").
EdgeList GenerateGrid(VertexId rows, VertexId cols, bool weighted = false,
                      uint64_t seed = 1, float max_weight = 16.0f);

/// Directed chain 0 -> 1 -> ... -> n-1; maximal propagation depth.
EdgeList GenerateChain(VertexId num_vertices, bool weighted = false,
                       uint64_t seed = 1);

/// Star: hub vertex 0 with bidirectional spokes; minimal depth.
EdgeList GenerateStar(VertexId num_spokes);

/// Complete directed graph on n vertices (all ordered pairs).
EdgeList GenerateComplete(VertexId num_vertices);

/// A named scaled-down stand-in for one of the paper's datasets.
struct DatasetSpec {
  std::string alias;        ///< paper's short name: PK, OK, LJ, ...
  VertexId num_vertices;
  EdgeId num_edges;
  double rmat_a, rmat_b, rmat_c;
  uint64_t seed;
};

/// The scaled dataset suite from DESIGN.md §2 (deterministic seeds).
const std::vector<DatasetSpec>& ScaledDatasets();

/// Looks up a dataset spec by alias; Status error if unknown.
Result<DatasetSpec> FindDataset(const std::string& alias);

/// Materializes a dataset: RMAT with the spec's skew, weighted edges,
/// deduplicated. `scale_divisor` further shrinks |V| and |E| (tests use
/// 16-32x to stay fast).
EdgeList MakeDataset(const DatasetSpec& spec, uint32_t scale_divisor = 1);

}  // namespace slfe

#endif  // SLFE_GRAPH_GENERATORS_H_
