#!/usr/bin/env python3
"""Drive a job-protocol batch against `slfe_server --listen` over TCP.

The stdin batch format gains one routing layer: with auth configured a
connection is bound to a single tenant, so a multi-tenant batch runs over
one connection per tenant. Script grammar (everything else is the wire
protocol, see src/slfe/service/line_driver.h):

    @<tenant> <protocol line>   send the line on <tenant>'s connection
    barrier                     `wait` on every connection and block until
                                each reports `done req=N` -- the cross-
                                connection sequencing point (e.g. "mutate
                                only after every first-wave job finished")
    # comment / blank           ignored

Every line received from the server is echoed to stdout (prefixed with the
tenant), so the caller can grep the streamed acks/results/stats exactly as
it grepped the stdin driver's output. Exit code: 0 iff no connection saw a
`reject:` line or a non-ok job status -- the same health contract as the
daemon's own exit code.

Usage:
    tcp_batch.py --port=PORT [--host=H] --auth T:SECRET [--auth U:SECRET2]
                 [--bad-auth T:WRONG] --script batch.txt
"""

import argparse
import socket
import sys


class Conn:
    """One authenticated protocol connection with buffered line reads."""

    def __init__(self, host, port, tenant, token, timeout=60.0):
        self.tenant = tenant
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.buf = b""
        self.failed = False
        if token is not None:
            self.send("auth %s %s\n" % (tenant, token))
            line = self.read_line()
            if line != "ok tenant=%s" % tenant:
                raise SystemExit("auth as %s failed: %r" % (tenant, line))

    def send(self, text):
        self.sock.sendall(text.encode())

    def read_line(self):
        """One line without its newline; None on EOF."""
        while b"\n" not in self.buf:
            data = self.sock.recv(4096)
            if not data:
                return None
            self.buf += data
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def echo(self, line):
        print("[%s] %s" % (self.tenant, line), flush=True)
        if line.startswith("reject:"):
            self.failed = True
        if " status=" in line and " status=ok " not in line + " ":
            self.failed = True

    def drain_until_done(self):
        """Reads (and echoes) until the barrier's `done req=N` line."""
        while True:
            line = self.read_line()
            if line is None:
                raise SystemExit("[%s] connection closed before `done`"
                                 % self.tenant)
            self.echo(line)
            if line.startswith("done req="):
                return

    def quit(self):
        try:
            self.send("quit\n")
        except OSError:
            # A `shutdown` in the script closes connections server-side;
            # quitting one that's already gone is fine.
            pass
        while True:
            line = self.read_line()
            if line is None:
                return
            self.echo(line)


def check_bad_auth(host, port, tenant, token):
    """A wrong token must get the generic rejection and a dropped socket."""
    sock = socket.create_connection((host, port), timeout=60.0)
    sock.sendall(("auth %s %s\n" % (tenant, token)).encode())
    data = b""
    while not data.endswith(b"\n"):
        chunk = sock.recv(4096)
        if not chunk:
            break
        data += chunk
    line = data.decode().strip()
    print("[bad-auth] %s" % line, flush=True)
    if line != "reject: auth failed":
        raise SystemExit("bad-auth: expected 'reject: auth failed', got %r"
                         % line)
    # The server must close us -- a refused peer doesn't keep a slot.
    if sock.recv(4096) != b"":
        raise SystemExit("bad-auth: connection not dropped after rejection")
    sock.close()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--auth", action="append", default=[],
                        metavar="TENANT:SECRET",
                        help="open one connection per tenant (repeatable)")
    parser.add_argument("--bad-auth", metavar="TENANT:SECRET",
                        help="first, prove this wrong token is turned away")
    parser.add_argument("--script", required=True)
    args = parser.parse_args()

    if args.bad_auth:
        tenant, token = args.bad_auth.split(":", 1)
        check_bad_auth(args.host, args.port, tenant, token)

    conns = {}
    for spec in args.auth:
        tenant, token = spec.split(":", 1)
        conns[tenant] = Conn(args.host, args.port, tenant, token)
    if not conns:
        raise SystemExit("need at least one --auth TENANT:SECRET")

    with open(args.script) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line == "barrier":
                for conn in conns.values():
                    conn.send("wait\n")
                for conn in conns.values():
                    conn.drain_until_done()
                continue
            if not line.startswith("@"):
                raise SystemExit("script line needs @tenant routing: %r"
                                 % line)
            tenant, _, payload = line[1:].partition(" ")
            if tenant not in conns:
                raise SystemExit("no connection for tenant %r" % tenant)
            conns[tenant].send(payload + "\n")

    for conn in conns.values():
        conn.quit()
    if any(conn.failed for conn in conns.values()):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
