// Social influence ranking: PageRank and TunkRank over a synthetic social
// network (power-law follower graph), demonstrating "finish early":
// most accounts' scores stabilize long before global convergence, and
// SLFE's multi-Ruler freezes them instead of recomputing every round.
// All four runs go through one api::Session, so the rank and influence
// jobs share the session's guidance provider exactly like the daemon's
// multi-tenant jobs do.
//
// Scenario: a platform ranks accounts for a "who to follow" module and
// re-runs the job on the same follower graph many times per day — the
// redundancy-reduction guidance is generated once and reused.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "slfe/api/session.h"
#include "slfe/graph/generators.h"

int main() {
  slfe::RmatOptions opt;
  opt.num_vertices = 1 << 15;  // 32k accounts
  opt.num_edges = 1 << 19;     // 512k follows
  opt.seed = 99;
  slfe::EdgeList follows = slfe::GenerateRmat(opt);
  follows.Deduplicate();
  slfe::Graph network = slfe::Graph::FromEdges(follows);
  std::printf("social graph: %u accounts, %llu follow edges\n",
              network.num_vertices(),
              static_cast<unsigned long long>(network.num_edges()));
  const uint32_t num_accounts = network.num_vertices();

  slfe::api::SessionOptions options;
  options.num_nodes = 4;
  slfe::api::Session session(options);
  if (!session.AddGraph("follows", std::move(network)).ok()) return 1;

  slfe::api::AppRequest rank_query;
  rank_query.app = "pr";
  rank_query.graph = "follows";
  rank_query.max_iters = 150;  // run to (near) convergence
  rank_query.epsilon = 1e-7;

  slfe::api::AppRequest influence_query = rank_query;
  influence_query.app = "tr";

  for (bool rr : {false, true}) {
    rank_query.enable_rr = rr;
    influence_query.enable_rr = rr;
    slfe::api::AppOutcome pr = session.Run(rank_query);
    slfe::api::AppOutcome tr = session.Run(influence_query);
    if (!pr.status.ok() || !tr.status.ok()) return 1;
    std::printf("[%s] PR: %llu computations, %.4f s, EC=%llu (%.1f%%)  "
                "TR: %.4f s\n",
                rr ? "SLFE " : "plain",
                static_cast<unsigned long long>(pr.info.stats.computations),
                pr.info.stats.RuntimeSeconds(),
                static_cast<unsigned long long>(pr.info.ec_vertices),
                100.0 * static_cast<double>(pr.info.ec_vertices) /
                    num_accounts,
                tr.info.stats.RuntimeSeconds());

    if (rr) {
      // Top influencers per the final run.
      std::vector<slfe::VertexId> order(pr.values.size());
      std::iota(order.begin(), order.end(), 0u);
      std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                        [&](slfe::VertexId a, slfe::VertexId b) {
                          return pr.values[a] > pr.values[b];
                        });
      std::printf("top-5 accounts by PageRank:");
      for (int i = 0; i < 5; ++i) {
        std::printf(" #%u(%.2f)", order[i], pr.values[order[i]]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
