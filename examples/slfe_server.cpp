// slfe_server — the long-lived multi-tenant guidance job daemon: a
// JobService fed by the newline job protocol (stdin or --jobs=FILE), with
// the guidance store, its GC budgets (global and per tenant), and the
// maintenance sweep cadence configured from the shell.
//
//   slfe_server --jobs=batch.txt --workers=4 --store-dir=/var/cache/slfe \
//               --maintenance-interval=30 --tenant-budget=acme:1048576:8
//   printf 'submit t1 sssp PK 0\nwait\nstats\n' | slfe_server
//   slfe_server --smoke        # CI: self-contained amortization check
//
// Protocol (see service/line_driver.h):
//   submit <tenant> <app> <graph> [root] [gas|dist] [norr]
//   wait | sweep | stats | quit
//
// Exit code: 0 when every job ran clean, non-zero otherwise — so a hung or
// misbehaving batch fails loudly under `timeout` in CI.

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "slfe/api/app_registry.h"
#include "slfe/graph/generators.h"
#include "slfe/net/net_server.h"
#include "slfe/service/job_service.h"
#include "slfe/service/line_driver.h"
#include "slfe/service/line_protocol.h"

namespace {

struct ServerOptions {
  size_t workers = 2;
  size_t queue_cap = 64;
  int nodes = 2;
  int threads = 1;
  uint32_t scale_divisor = 4;
  std::string jobs_file;  // empty = stdin
  std::string store_dir;
  std::string arena_dir;
  uint64_t store_max_entries = 0;
  uint64_t store_max_bytes = 0;
  double store_ttl = 0;
  double maintenance_interval = 0;
  uint32_t gen_threads = 0;
  size_t mini_chunk = 0;
  // Observability (obs/): slow-job capture threshold, periodic Prometheus
  // export, and the flight-recorder ring size. 0 slow-job-ms = off.
  double slow_job_ms = 0;
  std::string metrics_dump;
  size_t trace_ring = 64;
  // Demand sketch (sketch/hotness.h): 0 width/depth = sized from the
  // defaults (epsilon, delta); threshold 0 = admit every store write.
  size_t sketch_width = 0;
  size_t sketch_depth = 0;
  uint64_t hot_admit_threshold = 0;
  size_t max_tracked_tenants = 256;
  std::map<std::string, slfe::GuidanceTenantBudget> tenant_budgets;
  bool smoke = false;
  // TCP front end (net/net_server.h). listen=true switches the daemon from
  // the stdin line driver to the epoll loop.
  bool listen = false;
  uint16_t listen_port = 0;  // 0 = ephemeral, announced on stdout
  std::string bind_address = "127.0.0.1";
  std::map<std::string, std::string> auth_tokens;
  size_t max_connections = 256;
  bool allow_shutdown = false;
};

void PrintUsage() {
  // The submittable app and engine vocabularies come from the registry —
  // the same source Submit validates against, so this text cannot drift.
  std::fprintf(
      stderr,
      "usage: slfe_server [options]\n"
      "protocol: submit <tenant> <app> <graph> [root] [engine] [norr]\n"
      "  apps:    %s\n"
      "  engines: %s (default dist; see --list-apps for the pairs)\n"
      "options:\n"
      "  --jobs=FILE          read the job protocol from FILE (default: "
      "stdin)\n",
      slfe::api::AppRegistry::Global().UsageList().c_str(),
      slfe::api::AllEngineNames().c_str());
  std::fprintf(
      stderr,
      "  --workers=N          job worker threads (default 2)\n"
      "  --queue-cap=N        bounded queue depth; beyond it submissions "
      "are rejected (default 64)\n"
      "  --nodes=N            simulated cluster nodes per job (default 2)\n"
      "  --threads=N          threads per node (default 1)\n"
      "  --scale=N            dataset shrink divisor for lazily registered "
      "aliases (default 4)\n"
      "  --store-dir=PATH     persistent guidance store directory\n"
      "  --arena-dir=PATH     graph arena directory: lazily registered "
      "aliases map a saved\n"
      "                       *.sga arena instead of regenerating + "
      "re-partitioning, and\n"
      "                       write one back after a cold registration "
      "(warm restarts)\n"
      "  --store-max-entries=N / --store-max-bytes=N / --store-ttl=SECS\n"
      "                       global store GC budgets\n"
      "  --tenant-budget=T:BYTES:ENTRIES\n"
      "                       per-tenant store budget (repeatable; 0 = "
      "unlimited)\n"
      "  --maintenance-interval=SECS\n"
      "                       sweep the store every SECS from the "
      "maintenance loop\n"
      "  --gen-threads=N      guidance generation workers\n"
      "  --slow-job-ms=N      capture + WARN jobs slower than N ms "
      "end-to-end\n"
      "  --metrics-dump=PATH  write the Prometheus text exposition to PATH "
      "every\n"
      "                       maintenance sweep (requires "
      "--maintenance-interval)\n"
      "  --trace-ring=N       flight-recorder capacity: last N completed "
      "job traces\n"
      "                       (default 64; 'trace recent' reads this "
      "ring)\n"
      "  --sketch-width=N / --sketch-depth=N\n"
      "                       count-min demand sketch geometry (default: "
      "sized from\n"
      "                       epsilon=1/1024, delta=0.01; 'hot [k]' reads "
      "it)\n"
      "  --hot-admit-threshold=N\n"
      "                       persist guidance to the store only once a "
      "graph's\n"
      "                       estimated demand reaches N requests (0 = "
      "always)\n"
      "  --max-tracked-tenants=N\n"
      "                       exact per-tenant stat rows; the tail "
      "aggregates into\n"
      "                       one sketched row (default 256, 0 = "
      "unlimited)\n"
      "  --mini-chunk=N       work-stealing mini-chunk size for the "
      "partitioned sweep\n"
      "  --listen[=PORT]      serve the job protocol over TCP instead of "
      "stdin (0 or no\n"
      "                       value = ephemeral port, announced on stdout "
      "as\n"
      "                       'listening on ADDR:PORT')\n"
      "  --bind=ADDR          TCP bind address (default 127.0.0.1)\n"
      "  --auth-token=T:SECRET\n"
      "                       require connections to open with 'auth T "
      "SECRET' and bind\n"
      "                       them to tenant T (repeatable; none = auth "
      "optional)\n"
      "  --max-connections=N  concurrent TCP connections admitted "
      "(default 256)\n"
      "  --allow-shutdown     let a TCP client's 'shutdown' stop the "
      "daemon\n"
      "  --smoke              self-contained multi-tenant amortization "
      "check (CI)\n"
      "  --list-apps          print the application registry and exit\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseTenantBudget(const std::string& value, ServerOptions* opt) {
  size_t c1 = value.find(':');
  if (c1 == std::string::npos) return false;
  size_t c2 = value.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  std::string tenant = value.substr(0, c1);
  if (tenant.empty()) return false;
  slfe::GuidanceTenantBudget budget;
  budget.max_bytes = std::strtoull(value.substr(c1 + 1, c2 - c1 - 1).c_str(),
                                   nullptr, 10);
  budget.max_entries = std::strtoull(value.substr(c2 + 1).c_str(), nullptr, 10);
  opt->tenant_budgets[tenant] = budget;
  return true;
}

slfe::service::JobServiceOptions ServiceOptions(const ServerOptions& opt) {
  slfe::service::JobServiceOptions sopt;
  sopt.workers = opt.workers;
  sopt.queue_capacity = opt.queue_cap;
  sopt.job_nodes = opt.nodes;
  sopt.job_threads = opt.threads;
  sopt.provider.store_dir = opt.store_dir;
  sopt.provider.store_gc.max_entries = opt.store_max_entries;
  sopt.provider.store_gc.max_bytes = opt.store_max_bytes;
  sopt.provider.store_gc.ttl_seconds = opt.store_ttl;
  sopt.provider.generation_threads = opt.gen_threads;
  sopt.provider.generation_mini_chunk = opt.mini_chunk;
  sopt.tenant_budgets = opt.tenant_budgets;
  sopt.maintenance_interval_seconds = opt.maintenance_interval;
  sopt.arena_dir = opt.arena_dir;
  sopt.slow_job_ms = opt.slow_job_ms;
  sopt.trace_ring_capacity = opt.trace_ring;
  sopt.metrics_dump_path = opt.metrics_dump;
  sopt.hotness.sketch.width = opt.sketch_width;
  sopt.hotness.sketch.depth = opt.sketch_depth;
  sopt.hot_admit_threshold = opt.hot_admit_threshold;
  sopt.max_tracked_tenants = opt.max_tracked_tenants;
  return sopt;
}

/// CI smoke: 3 tenants hammer 2 graphs with concurrent guidance-using jobs
/// through one service; passes iff the shared provider generated guidance
/// exactly once per graph (singleflight + cache amortization), per-tenant
/// counters sum to the totals, nothing failed, and shutdown drains clean.
int SmokeRun() {
  slfe::service::JobServiceOptions sopt;
  sopt.workers = 4;
  sopt.queue_capacity = 64;
  sopt.job_nodes = 2;
  std::string dir =
      "/tmp/slfe_server_smoke." + std::to_string(::getpid());
  sopt.provider.store_dir = dir;
  sopt.maintenance_interval_seconds = 0.02;  // exercise the timer mid-run
  slfe::service::JobService service(sopt);

  const char* kGraphs[] = {"PK", "OK"};
  for (const char* alias : kGraphs) {
    slfe::DatasetSpec spec = slfe::FindDataset(alias).value();
    slfe::EdgeList edges = slfe::MakeDataset(spec, /*scale_divisor=*/16);
    slfe::Status s = service.RegisterGraph(alias, slfe::Graph::FromEdges(edges));
    if (!s.ok()) {
      std::fprintf(stderr, "smoke: register failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  std::vector<slfe::service::JobTicket> tickets;
  const char* kTenants[] = {"t1", "t2", "t3"};
  for (int round = 0; round < 2; ++round) {
    for (const char* tenant : kTenants) {
      for (const char* alias : kGraphs) {
        slfe::service::JobRequest request;
        request.tenant = tenant;
        request.app = "sssp";
        request.graph = alias;
        request.root = 0;
        auto ticket = service.Submit(request);
        if (!ticket.ok()) {
          std::fprintf(stderr, "smoke: submit failed: %s\n",
                       ticket.status().ToString().c_str());
          return 1;
        }
        tickets.push_back(std::move(ticket).value());
      }
    }
  }
  for (const auto& ticket : tickets) {
    if (!ticket->Wait().status.ok()) {
      std::fprintf(stderr, "smoke: job failed: %s\n",
                   ticket->Wait().status.ToString().c_str());
      return 1;
    }
  }
  service.Shutdown();

  slfe::service::JobServiceStats stats = service.Stats();
  uint64_t tenant_jobs = 0, tenant_hits = 0, tenant_misses = 0;
  for (const auto& [name, t] : stats.tenants) {
    tenant_jobs += t.jobs_completed;
    tenant_hits += t.guidance_hits;
    tenant_misses += t.guidance_misses;
  }
  bool ok = stats.provider.generations == 2 &&      // one sweep per graph
            stats.completed == tickets.size() &&    // drained clean
            stats.failed == 0 &&
            tenant_jobs == stats.completed &&       // tenant rows sum up
            tenant_hits + tenant_misses == tickets.size() &&
            tenant_misses == stats.provider.generations;
  std::printf(
      "smoke: jobs=%llu generations=%llu (want 2) hits=%llu misses=%llu "
      "sweeps=%llu -> %s\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.provider.generations),
      static_cast<unsigned long long>(tenant_hits),
      static_cast<unsigned long long>(tenant_misses),
      static_cast<unsigned long long>(stats.maintenance_sweeps),
      ok ? "OK" : "FAIL");
  // Drop the smoke store so repeated runs start cold.
  if (!dir.empty()) {
    slfe::GuidanceStore cleanup(dir);
    cleanup.RemoveAll();
    ::rmdir(dir.c_str());
  }
  return ok ? 0 : 1;
}

slfe::net::NetServer* g_net_server = nullptr;

void HandleStopSignal(int) {
  if (g_net_server != nullptr) g_net_server->Stop();
}

/// SIGUSR1 = "dump telemetry now". The handler only raises a flag; the
/// event loop's on_loop_tick does the rendering on its own thread, because
/// the registry and flight recorder take locks that a handler must not.
std::atomic<bool> g_dump_requested{false};

void HandleDumpSignal(int) {
  g_dump_requested.store(true);
  // Wake the event loop: the signal rarely lands on the loop thread, so
  // without this the dump would wait for the next connection event.
  if (g_net_server != nullptr) g_net_server->Wake();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--jobs", &value)) {
      opt.jobs_file = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      opt.workers = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--queue-cap", &value)) {
      opt.queue_cap = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      opt.nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      opt.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      opt.scale_divisor = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--store-dir", &value)) {
      opt.store_dir = value;
    } else if (ParseFlag(argv[i], "--arena-dir", &value)) {
      opt.arena_dir = value;
    } else if (ParseFlag(argv[i], "--store-max-entries", &value)) {
      opt.store_max_entries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--store-max-bytes", &value)) {
      opt.store_max_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--store-ttl", &value)) {
      opt.store_ttl = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--maintenance-interval", &value)) {
      opt.maintenance_interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--gen-threads", &value)) {
      opt.gen_threads = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--mini-chunk", &value)) {
      opt.mini_chunk = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--slow-job-ms", &value)) {
      opt.slow_job_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--metrics-dump", &value)) {
      opt.metrics_dump = value;
    } else if (ParseFlag(argv[i], "--trace-ring", &value)) {
      opt.trace_ring = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--sketch-width", &value)) {
      opt.sketch_width = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--sketch-depth", &value)) {
      opt.sketch_depth = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--hot-admit-threshold", &value)) {
      opt.hot_admit_threshold = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-tracked-tenants", &value)) {
      opt.max_tracked_tenants = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--tenant-budget", &value)) {
      if (!ParseTenantBudget(value, &opt)) {
        std::fprintf(stderr, "bad --tenant-budget (want T:BYTES:ENTRIES): %s\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--listen", &value)) {
      opt.listen = true;
      unsigned long port = std::strtoul(value.c_str(), nullptr, 10);
      if (port > 65535) {
        std::fprintf(stderr, "bad --listen port: %s\n", value.c_str());
        return 2;
      }
      opt.listen_port = static_cast<uint16_t>(port);
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      opt.listen = true;  // ephemeral port
    } else if (ParseFlag(argv[i], "--bind", &value)) {
      opt.bind_address = value;
    } else if (ParseFlag(argv[i], "--auth-token", &value)) {
      size_t colon = value.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == value.size()) {
        std::fprintf(stderr, "bad --auth-token (want TENANT:SECRET): %s\n",
                     value.c_str());
        return 2;
      }
      opt.auth_tokens[value.substr(0, colon)] = value.substr(colon + 1);
    } else if (ParseFlag(argv[i], "--max-connections", &value)) {
      opt.max_connections = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (std::strcmp(argv[i], "--allow-shutdown") == 0) {
      opt.allow_shutdown = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opt.smoke = true;
    } else if (std::strcmp(argv[i], "--list-apps") == 0) {
      std::fputs(slfe::api::AppRegistry::Global().ListApps().c_str(), stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }
  if (opt.workers == 0 || opt.queue_cap == 0 || opt.nodes < 1 ||
      opt.threads < 1 || opt.scale_divisor < 1) {
    // A zero scale divisor would otherwise SIGABRT the daemon inside
    // MakeDataset at the first lazily registered submit, mid-batch.
    PrintUsage();
    return 2;
  }
  if (opt.smoke) return SmokeRun();
  if ((!opt.tenant_budgets.empty() || opt.store_max_entries > 0 ||
       opt.store_max_bytes > 0 || opt.store_ttl > 0) &&
      opt.store_dir.empty()) {
    std::fprintf(stderr, "store budgets require --store-dir\n");
    return 2;
  }
  if (opt.maintenance_interval > 0 && opt.store_dir.empty() &&
      opt.metrics_dump.empty()) {
    // The maintenance timer only has work when there is a store to sweep
    // or a metrics file to refresh.
    std::fprintf(stderr,
                 "--maintenance-interval requires --store-dir or "
                 "--metrics-dump\n");
    return 2;
  }
  if (!opt.metrics_dump.empty() && opt.maintenance_interval <= 0) {
    std::fprintf(stderr,
                 "--metrics-dump requires --maintenance-interval (it is "
                 "written from the maintenance timer)\n");
    return 2;
  }

  if (opt.listen) {
    if (!opt.jobs_file.empty()) {
      std::fprintf(stderr, "--jobs and --listen are mutually exclusive\n");
      return 2;
    }
    if (opt.max_connections == 0) {
      std::fprintf(stderr, "--max-connections must be positive\n");
      return 2;
    }
    slfe::service::JobService service(ServiceOptions(opt));
    slfe::net::NetServerOptions nopt;
    nopt.bind_address = opt.bind_address;
    nopt.port = opt.listen_port;
    nopt.auth_tokens = opt.auth_tokens;
    nopt.max_connections = opt.max_connections;
    nopt.allow_shutdown = opt.allow_shutdown;
    nopt.session.scale_divisor = opt.scale_divisor;
    nopt.on_loop_tick = [&service] {
      if (!g_dump_requested.exchange(false)) return;
      std::fprintf(stderr, "%s%s\n", service.RenderMetricsText().c_str(),
                   service.RenderTraceJson("recent").c_str());
      std::fflush(stderr);
    };
    slfe::net::NetServer server(service, nopt);
    slfe::Status s = server.Start();
    if (!s.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", s.ToString().c_str());
      return 2;
    }
    // SIGINT/SIGTERM stop the loop gracefully (drain, then exit); Stop()
    // is async-signal-safe (atomic store + eventfd write).
    g_net_server = &server;
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    // SIGUSR1 dumps metrics + recent traces to stderr. The handler wakes
    // the event loop through the eventfd (Wake()), so the dump happens on
    // the next tick even when the daemon is idle. Listen mode only — the
    // stdin driver's blocking fgets must keep restarting across signals.
    struct sigaction dump_action;
    std::memset(&dump_action, 0, sizeof(dump_action));
    dump_action.sa_handler = HandleDumpSignal;
    sigemptyset(&dump_action.sa_mask);
    dump_action.sa_flags = 0;
    ::sigaction(SIGUSR1, &dump_action, nullptr);
    // Announced on stdout so scripts using an ephemeral port (--listen=0)
    // can read the bound address back; flushed before the loop blocks.
    std::printf("listening on %s:%u\n", nopt.bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    int rc = server.Serve();
    g_net_server = nullptr;
    service.Shutdown();
    std::fputs(slfe::service::FormatStats(service.Stats()).c_str(), stdout);
    return rc;
  }

  std::FILE* in = stdin;
  if (!opt.jobs_file.empty()) {
    in = std::fopen(opt.jobs_file.c_str(), "r");
    if (in == nullptr) {
      std::fprintf(stderr, "cannot open --jobs file: %s\n",
                   opt.jobs_file.c_str());
      return 2;
    }
  }

  slfe::service::JobService service(ServiceOptions(opt));
  slfe::service::LineDriverOptions dopt;
  dopt.scale_divisor = opt.scale_divisor;
  int rc = slfe::service::RunLineDriver(service, in, stdout, dopt);
  if (in != stdin) std::fclose(in);
  return rc;
}
