// Quickstart: generate a small power-law graph, open an api::Session, and
// run SSSP twice through Session::Run — once as the plain Gemini-style
// baseline and once with SLFE's redundancy reduction — then compare the
// work and runtime of the two runs. Session::Run is the same entry point
// the CLI, the daemon, and the benches use; `slfe_cli --list-apps` prints
// everything it can run.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart

#include <cstdio>

#include "slfe/api/session.h"
#include "slfe/graph/generators.h"

int main() {
  // 1. Make a graph. Real deployments would use LoadEdgeListText/Binary;
  //    here we synthesize a 16k-vertex weighted power-law graph.
  slfe::RmatOptions opt;
  opt.num_vertices = 1 << 14;
  opt.num_edges = 1 << 18;
  opt.weighted = true;
  opt.max_weight = 256.0f;
  slfe::EdgeList edges = slfe::GenerateRmat(opt);
  edges.Deduplicate();
  slfe::Graph graph = slfe::Graph::FromEdges(edges);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Open a session on a simulated 4-node cluster and register the
  //    graph. The session owns the guidance provider, so every run below
  //    shares one guidance cache.
  slfe::api::SessionOptions options;
  options.num_nodes = 4;
  slfe::api::Session session(options);
  if (!session.AddGraph("web", std::move(graph)).ok()) return 1;

  // 3. Baseline run (Gemini-style dual-mode engine, no RR).
  slfe::api::AppRequest request;
  request.app = "sssp";
  request.graph = "web";
  request.root = 0;
  request.enable_rr = false;
  slfe::api::AppOutcome baseline = session.Run(request);

  // 4. SLFE run ("start late" redundancy reduction on).
  request.enable_rr = true;
  slfe::api::AppOutcome slfe_run = session.Run(request);
  if (!baseline.status.ok() || !slfe_run.status.ok()) return 1;

  // 5. Same answers, less redundant work.
  size_t mismatches = 0;
  for (size_t v = 0; v < baseline.values.size(); ++v) {
    if (baseline.values[v] != slfe_run.values[v]) ++mismatches;
  }
  std::printf("value mismatches vs baseline: %zu (must be 0)\n", mismatches);
  std::printf("baseline: %llu computations, %.4f s\n",
              static_cast<unsigned long long>(
                  baseline.info.stats.computations),
              baseline.info.stats.RuntimeSeconds());
  std::printf("SLFE:     %llu computations (+%llu bypassed), %.4f s, "
              "guidance %.4f s (reusable)\n",
              static_cast<unsigned long long>(
                  slfe_run.info.stats.computations),
              static_cast<unsigned long long>(slfe_run.info.stats.skipped),
              slfe_run.info.stats.RuntimeSeconds(),
              slfe_run.info.guidance_seconds);
  return mismatches == 0 ? 0 : 1;
}
