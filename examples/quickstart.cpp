// Quickstart: generate a small power-law graph, run SSSP twice — once as
// the plain Gemini-style baseline and once with SLFE's redundancy
// reduction — and compare the work and runtime of the two runs.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart

#include <cstdio>

#include "slfe/apps/sssp.h"
#include "slfe/graph/generators.h"

int main() {
  // 1. Make a graph. Real deployments would use LoadEdgeListText/Binary;
  //    here we synthesize a 16k-vertex weighted power-law graph.
  slfe::RmatOptions opt;
  opt.num_vertices = 1 << 14;
  opt.num_edges = 1 << 18;
  opt.weighted = true;
  opt.max_weight = 256.0f;
  slfe::EdgeList edges = slfe::GenerateRmat(opt);
  edges.Deduplicate();
  slfe::Graph graph = slfe::Graph::FromEdges(edges);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Configure a simulated 4-node cluster.
  slfe::AppConfig config;
  config.num_nodes = 4;
  config.root = 0;

  // 3. Baseline run (Gemini-style dual-mode engine, no RR).
  config.enable_rr = false;
  slfe::SsspResult baseline = slfe::RunSssp(graph, config);

  // 4. SLFE run ("start late" redundancy reduction on).
  config.enable_rr = true;
  slfe::SsspResult slfe_run = slfe::RunSssp(graph, config);

  // 5. Same answers, less redundant work.
  size_t mismatches = 0;
  for (slfe::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (baseline.dist[v] != slfe_run.dist[v]) ++mismatches;
  }
  std::printf("value mismatches vs baseline: %zu (must be 0)\n", mismatches);
  std::printf("baseline: %llu computations, %.4f s\n",
              static_cast<unsigned long long>(
                  baseline.info.stats.computations),
              baseline.info.stats.RuntimeSeconds());
  std::printf("SLFE:     %llu computations (+%llu bypassed), %.4f s, "
              "guidance %.4f s (reusable)\n",
              static_cast<unsigned long long>(
                  slfe_run.info.stats.computations),
              static_cast<unsigned long long>(slfe_run.info.stats.skipped),
              slfe_run.info.stats.RuntimeSeconds(),
              slfe_run.info.guidance_seconds);
  return mismatches == 0 ? 0 : 1;
}
