// slfe_cli — command-line driver for the SLFE library: run any registered
// application on any declared engine over a named synthetic dataset or an
// edge-list file, with the cluster shape and redundancy reduction
// configurable from the shell. The app catalog (names, engines, graph
// requirements, help text) comes from the AppRegistry, and execution goes
// through the same slfe::api::Session::Run path the daemon and the benches
// use — there is no CLI-private dispatch.
//
//   slfe_cli --app=sssp --dataset=PK --nodes=8 --rr
//   slfe_cli --app=sssp --engine=gas --dataset=PK --rr
//   slfe_cli --app=pr --engine=ooc --file=edges.txt --iters=100
//   slfe_cli --app=sssp --dataset=PK --rr --store-dir=/var/cache/slfe \
//            --store-max-entries=128 --store-ttl=86400
//   slfe_cli --serve --jobs=batch.txt --workers=4 --store-dir=/var/cache/slfe
//   slfe_cli --list-apps
//   slfe_cli --list
//
// --serve switches from one-shot mode into the multi-tenant JobService
// daemon: jobs stream in over the line protocol (stdin or --jobs=FILE),
// share one guidance provider, and the maintenance loop sweeps the store.
// slfe_server is the same daemon with the full knob set (per-tenant
// budgets etc.); --serve is the quickstart spelling.
//
// Exits non-zero with a usage message on bad arguments.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "slfe/api/app_registry.h"
#include "slfe/api/session.h"
#include "slfe/core/guidance_provider.h"
#include "slfe/core/guidance_store.h"
#include "slfe/graph/generators.h"
#include "slfe/graph/loader.h"
#include "slfe/service/job_service.h"
#include "slfe/service/line_driver.h"

namespace {

struct CliOptions {
  std::string app = "sssp";
  std::string engine = "dist";
  std::string dataset = "PK";
  std::string file;
  int nodes = 1;
  int threads = 1;
  bool rr = false;
  bool no_stealing = false;
  uint32_t iters = 50;
  slfe::VertexId root = 0;
  uint32_t scale_divisor = 4;
  // Guidance subsystem knobs (only consulted with --rr): persistent store
  // directory + its GC policy, and the generation strategy.
  std::string store_dir;
  uint64_t store_max_entries = 0;
  uint64_t store_max_bytes = 0;
  double store_ttl = 0;
  std::string arena_dir;
  std::string gen_strategy = "auto";
  uint32_t gen_threads = 0;
  size_t mini_chunk = 0;
  // Daemon mode (--serve): line-protocol job service.
  bool serve = false;
  std::string jobs_file;  // empty = stdin
  uint32_t workers = 2;
  double maintenance_interval = 0;
};

void PrintUsage() {
  // The app and engine vocabularies come from the registry — this text
  // cannot drift from what actually runs.
  const slfe::api::AppRegistry& registry = slfe::api::AppRegistry::Global();
  std::fprintf(
      stderr,
      "usage: slfe_cli [options]\n"
      "  --app=NAME       %s\n"
      "                   (default sssp; see --list-apps)\n"
      "  --engine=NAME    %s (default dist)\n"
      "  --dataset=ALIAS  PK|OK|LJ|WK|DI|ST|FS|RMAT (default PK)\n"
      "  --file=PATH      load a graph file instead of a dataset (text or\n"
      "                   binary edge list, or a *.sga arena — sniffed)\n"
      "  --nodes=N        simulated cluster nodes (default 1)\n"
      "  --threads=N      threads per node (default 1)\n"
      "  --rr             enable SLFE redundancy reduction\n"
      "  --no-stealing    disable intra-node work stealing\n"
      "  --iters=N        iteration cap for the arithmetic apps "
      "(default 50)\n"
      "  --root=V         root vertex for single-source apps (default 0)\n"
      "  --scale=N        dataset shrink divisor (default 4)\n"
      "  --store-dir=PATH persist guidance to PATH (reused across runs)\n"
      "  --store-max-entries=N  guidance store GC: keep at most N entries\n"
      "  --store-max-bytes=N    guidance store GC: keep at most N bytes\n"
      "  --store-ttl=SECS       guidance store GC: drop entries older\n"
      "                         than SECS (swept when the store opens)\n"
      "  --arena-dir=PATH map the dataset's saved *.sga graph arena when\n"
      "                   present (skipping the synthesis + parse), and\n"
      "                   write one back after a cold load (warm restarts;\n"
      "                   also honored by --serve)\n"
      "  --gen-strategy=S guidance generation: auto|serial|uniform|\n"
      "                   partitioned (default auto)\n"
      "  --gen-threads=N  guidance generation workers (default: cores)\n"
      "  --mini-chunk=N   work-stealing granularity of the partitioned\n"
      "                   sweep (default 256; tune per host)\n"
      "  --serve          run as the multi-tenant job daemon (line\n"
      "                   protocol on stdin or --jobs=FILE)\n"
      "  --jobs=FILE      job protocol input for --serve\n"
      "  --workers=N      --serve: job worker threads (default 2)\n"
      "  --maintenance-interval=SECS\n"
      "                   --serve: sweep the store every SECS\n"
      "  --list-apps      print the application registry and exit\n"
      "  --list           print the dataset suite and exit\n",
      registry.UsageList().c_str(), slfe::api::AllEngineNames().c_str());
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseStrategy(const std::string& name,
                   slfe::GuidanceGenerationStrategy* out) {
  if (name == "auto") {
    *out = slfe::GuidanceGenerationStrategy::kAuto;
  } else if (name == "serial") {
    *out = slfe::GuidanceGenerationStrategy::kSerial;
  } else if (name == "uniform") {
    *out = slfe::GuidanceGenerationStrategy::kUniformParallel;
  } else if (name == "partitioned") {
    *out = slfe::GuidanceGenerationStrategy::kPartitionedParallel;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--app", &value)) {
      opt.app = value;
    } else if (ParseFlag(argv[i], "--engine", &value)) {
      opt.engine = value;
    } else if (ParseFlag(argv[i], "--dataset", &value)) {
      opt.dataset = value;
    } else if (ParseFlag(argv[i], "--file", &value)) {
      opt.file = value;
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      opt.nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      opt.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--iters", &value)) {
      opt.iters = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--root", &value)) {
      opt.root = static_cast<slfe::VertexId>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--scale", &value)) {
      opt.scale_divisor = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--store-dir", &value)) {
      opt.store_dir = value;
    } else if (ParseFlag(argv[i], "--store-max-entries", &value)) {
      opt.store_max_entries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--store-max-bytes", &value)) {
      opt.store_max_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--store-ttl", &value)) {
      opt.store_ttl = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--arena-dir", &value)) {
      opt.arena_dir = value;
    } else if (ParseFlag(argv[i], "--gen-strategy", &value)) {
      opt.gen_strategy = value;
    } else if (ParseFlag(argv[i], "--gen-threads", &value)) {
      opt.gen_threads = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--mini-chunk", &value)) {
      opt.mini_chunk = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--jobs", &value)) {
      opt.jobs_file = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      opt.workers = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--maintenance-interval", &value)) {
      opt.maintenance_interval = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      opt.serve = true;
    } else if (std::strcmp(argv[i], "--rr") == 0) {
      opt.rr = true;
    } else if (std::strcmp(argv[i], "--no-stealing") == 0) {
      opt.no_stealing = true;
    } else if (std::strcmp(argv[i], "--list-apps") == 0) {
      std::fputs(slfe::api::AppRegistry::Global().ListApps().c_str(), stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("%-8s %-12s %-12s\n", "alias", "|V|", "|E|");
      for (const slfe::DatasetSpec& s : slfe::ScaledDatasets()) {
        std::printf("%-8s %-12u %-12llu\n", s.alias.c_str(), s.num_vertices,
                    static_cast<unsigned long long>(s.num_edges));
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage();
      return 2;
    }
  }
  if (opt.nodes < 1 || opt.threads < 1 || opt.scale_divisor < 1) {
    PrintUsage();
    return 2;
  }

  if (opt.serve) {
    // Daemon mode: one JobService, jobs streamed over the line protocol.
    // The guidance knobs configure the service's SHARED provider, which
    // is what turns N concurrent jobs on one graph into one generation.
    if (opt.store_dir.empty() &&
        (opt.store_max_entries > 0 || opt.store_max_bytes > 0 ||
         opt.store_ttl > 0 || opt.maintenance_interval > 0)) {
      // Same rule as the one-shot path: silently ignoring a GC budget or
      // sweep cadence would let the user believe the store is bounded
      // when there is no store at all.
      std::fprintf(stderr,
                   "--store-max-entries/--store-max-bytes/--store-ttl/"
                   "--maintenance-interval require --store-dir\n");
      PrintUsage();
      return 2;
    }
    slfe::service::JobServiceOptions sopt;
    sopt.workers = opt.workers;
    sopt.job_nodes = opt.nodes;
    sopt.job_threads = opt.threads;
    sopt.provider.store_dir = opt.store_dir;
    sopt.provider.store_gc.max_entries = opt.store_max_entries;
    sopt.provider.store_gc.max_bytes = opt.store_max_bytes;
    sopt.provider.store_gc.ttl_seconds = opt.store_ttl;
    sopt.provider.generation_threads = opt.gen_threads;
    sopt.provider.generation_mini_chunk = opt.mini_chunk;
    if (!ParseStrategy(opt.gen_strategy, &sopt.provider.generation_strategy)) {
      std::fprintf(stderr, "unknown --gen-strategy: %s\n",
                   opt.gen_strategy.c_str());
      return 2;
    }
    sopt.maintenance_interval_seconds = opt.maintenance_interval;
    sopt.arena_dir = opt.arena_dir;
    std::FILE* in = stdin;
    if (!opt.jobs_file.empty()) {
      in = std::fopen(opt.jobs_file.c_str(), "r");
      if (in == nullptr) {
        std::fprintf(stderr, "cannot open --jobs file: %s\n",
                     opt.jobs_file.c_str());
        return 2;
      }
    }
    slfe::service::JobService service(sopt);
    slfe::service::LineDriverOptions dopt;
    dopt.scale_divisor = opt.scale_divisor;
    int rc = slfe::service::RunLineDriver(service, in, stdout, dopt);
    if (in != stdin) std::fclose(in);
    return rc;
  }

  // One-shot mode. Load or synthesize the graph; the session (not the
  // CLI) derives the undirected closure when the app requires one.
  slfe::api::SessionOptions sopt;
  sopt.num_nodes = opt.nodes;
  sopt.threads_per_node = opt.threads;
  if (!opt.store_dir.empty()) {
    sopt.provider.store_dir = opt.store_dir;
    sopt.provider.store_gc.max_entries = opt.store_max_entries;
    sopt.provider.store_gc.max_bytes = opt.store_max_bytes;
    sopt.provider.store_gc.ttl_seconds = opt.store_ttl;
  } else if (opt.store_max_entries > 0 || opt.store_max_bytes > 0 ||
             opt.store_ttl > 0) {
    // Silently ignoring a GC budget would let the user believe the
    // store is bounded when there is no store at all.
    std::fprintf(stderr,
                 "--store-max-entries/--store-max-bytes/--store-ttl "
                 "require --store-dir\n");
    PrintUsage();
    return 2;
  }
  sopt.provider.generation_threads = opt.gen_threads;
  sopt.provider.generation_mini_chunk = opt.mini_chunk;
  sopt.arena_dir = opt.arena_dir;
  if (!ParseStrategy(opt.gen_strategy, &sopt.provider.generation_strategy)) {
    std::fprintf(stderr, "unknown --gen-strategy: %s\n",
                 opt.gen_strategy.c_str());
    PrintUsage();
    return 2;
  }

  slfe::api::Session session(sopt);

  // Registration: a saved arena (dataset mode with --arena-dir) maps in
  // milliseconds; otherwise synthesize/parse, then write the arena back so
  // the NEXT invocation takes the warm path. --file goes through the
  // format-sniffing loader, so pointing it at a *.sga maps it directly.
  std::string arena_path;
  bool mapped = false;
  if (!opt.file.empty()) {
    auto loaded = slfe::LoadGraphAuto(opt.file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    slfe::Status added = session.AddGraph("cli", std::move(loaded).value());
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
  } else {
    arena_path = session.ArenaPath(opt.dataset + ".s" +
                                   std::to_string(opt.scale_divisor));
    mapped = !arena_path.empty() &&
             session.AddGraphFromArena("cli", arena_path).ok();
    if (!mapped) {
      auto spec = slfe::FindDataset(opt.dataset);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      slfe::EdgeList edges = slfe::MakeDataset(spec.value(), opt.scale_divisor);
      slfe::Status added =
          session.AddGraph("cli", slfe::Graph::FromEdges(edges));
      if (!added.ok()) {
        std::fprintf(stderr, "%s\n", added.ToString().c_str());
        return 1;
      }
      if (!arena_path.empty()) {
        // Best-effort: a failed write-back costs the next run its warm
        // path, nothing else.
        (void)session.SaveGraphArena("cli", arena_path);
      }
    }
  }

  std::shared_ptr<const slfe::Graph> graph = session.GetGraph("cli");
  std::printf("graph: %u vertices, %llu edges | app=%s engine=%s nodes=%d "
              "threads=%d rr=%d%s\n",
              graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()),
              opt.app.c_str(), opt.engine.c_str(), opt.nodes, opt.threads,
              opt.rr ? 1 : 0, mapped ? " (mapped from arena)" : "");

  slfe::api::AppRequest request;
  request.app = opt.app;
  request.engine = opt.engine;
  request.graph = "cli";
  request.root = opt.root;
  request.max_iters = opt.iters;
  request.enable_rr = opt.rr;
  request.enable_stealing = !opt.no_stealing;

  // THE execution path — registry dispatch, no app names in this file.
  slfe::api::AppOutcome outcome = session.Run(request);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status.ToString().c_str());
    PrintUsage();
    return 2;
  }
  std::printf("%s\n", outcome.summary_text.c_str());
  std::printf("supersteps=%llu computations=%llu bypassed=%llu "
              "updates=%llu runtime=%.4fs guidance=%.4fs\n",
              static_cast<unsigned long long>(outcome.info.supersteps),
              static_cast<unsigned long long>(outcome.info.stats.computations),
              static_cast<unsigned long long>(outcome.info.stats.skipped),
              static_cast<unsigned long long>(outcome.info.stats.updates),
              outcome.info.stats.RuntimeSeconds(),
              outcome.info.guidance_seconds);

  if (session.provider().store() != nullptr) {
    // Surface the persistence counters so warm vs cold runs against the
    // same --store-dir are distinguishable from the shell.
    slfe::GuidanceStoreStats ss = session.provider().store()->stats();
    slfe::GuidanceCacheStats cs = session.provider().cache_stats();
    std::printf(
        "guidance store: saves=%llu loads=%llu store_hits=%llu "
        "gc_removed=%llu (dir=%s, strategy=%s)\n",
        static_cast<unsigned long long>(ss.saves),
        static_cast<unsigned long long>(ss.loads),
        static_cast<unsigned long long>(cs.store_hits),
        static_cast<unsigned long long>(ss.gc_removed),
        session.provider().store()->dir().c_str(), opt.gen_strategy.c_str());
  }
  return 0;
}
