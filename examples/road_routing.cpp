// Road-network routing: single-source shortest paths and widest
// (maximum-bottleneck) paths on a grid-shaped road network — the deep,
// high-diameter topology where "start late" pays off most, since every
// intersection is re-relaxed many times by a plain Bellman-Ford-style
// engine. Both queries go through one api::Session — the same Session::Run
// entry point the CLI, daemon, and benches use.
//
// Scenario: a logistics service wants, from one depot, (a) the fastest
// route cost to every intersection and (b) the widest route (max vehicle
// size limited by the narrowest road segment).

#include <cstdio>

#include "slfe/api/session.h"
#include "slfe/graph/generators.h"

int main() {
  // City grid: 200 x 200 intersections, weighted segments (travel cost
  // also serves as road width in this demo).
  constexpr slfe::VertexId kSide = 200;
  slfe::EdgeList roads =
      slfe::GenerateGrid(kSide, kSide, /*weighted=*/true, /*seed=*/2026,
                         /*max_weight=*/64.0f);
  slfe::Graph city = slfe::Graph::FromEdges(roads);
  std::printf("road network: %u intersections, %llu segments\n",
              city.num_vertices(),
              static_cast<unsigned long long>(city.num_edges()));

  slfe::api::SessionOptions options;
  options.num_nodes = 4;
  slfe::api::Session session(options);
  if (!session.AddGraph("city", std::move(city)).ok()) return 1;

  slfe::api::AppRequest routes_query;
  routes_query.app = "sssp";
  routes_query.graph = "city";
  routes_query.root = 0;  // the depot at the grid corner

  slfe::api::AppRequest widths_query = routes_query;
  widths_query.app = "wp";

  for (bool rr : {false, true}) {
    routes_query.enable_rr = rr;
    widths_query.enable_rr = rr;
    slfe::api::AppOutcome routes = session.Run(routes_query);
    slfe::api::AppOutcome widths = session.Run(widths_query);
    if (!routes.status.ok() || !widths.status.ok()) return 1;

    // Route quality to the far corner of the city.
    slfe::VertexId far_corner = kSide * kSide - 1;
    std::printf(
        "[%s] cost(depot -> far corner)=%.0f  width=%.0f  "
        "sssp: %llu computations in %llu supersteps (%.4f s)\n",
        rr ? "SLFE " : "plain",
        routes.values[far_corner], widths.values[far_corner],
        static_cast<unsigned long long>(routes.info.stats.computations),
        static_cast<unsigned long long>(routes.info.supersteps),
        routes.info.stats.RuntimeSeconds());
  }
  std::printf("note: on deep road-like graphs SLFE bypasses most of the\n"
              "intermediate re-relaxations (compare computation counts).\n");
  return 0;
}
