// Community detection over a web/folksonomy-style graph: connected
// components via minimum-label propagation, plus an approximate diameter
// probe of the largest component. Demonstrates the min/max-aggregation
// path of SLFE's API on an all-vertices-seeded application.
//
// Scenario: a crawler wants the weakly connected structure of a crawl
// snapshot (how many islands, how big the core is, roughly how wide).

#include <cstdio>
#include <map>

#include "slfe/apps/approx_diameter.h"
#include "slfe/apps/cc.h"
#include "slfe/graph/generators.h"

int main() {
  // Crawl snapshot: sparse power-law graph; CC needs the undirected
  // closure, so symmetrize before building.
  slfe::RmatOptions opt;
  opt.num_vertices = 1 << 15;
  opt.num_edges = 1 << 17;  // sparse: multiple islands survive
  opt.seed = 1234;
  slfe::EdgeList crawl = slfe::GenerateRmat(opt);
  crawl.Symmetrize();
  crawl.Deduplicate();
  slfe::Graph snapshot = slfe::Graph::FromEdges(crawl);
  std::printf("crawl snapshot: %u pages, %llu links (symmetrized)\n",
              snapshot.num_vertices(),
              static_cast<unsigned long long>(snapshot.num_edges()));

  slfe::AppConfig config;
  config.num_nodes = 4;
  config.enable_rr = true;
  slfe::CcResult cc = slfe::RunCc(snapshot, config);

  // Component census.
  std::map<uint32_t, uint32_t> sizes;
  for (uint32_t label : cc.labels) ++sizes[label];
  uint32_t largest = 0, largest_label = 0;
  for (const auto& [label, size] : sizes) {
    if (size > largest) {
      largest = size;
      largest_label = label;
    }
  }
  std::printf("components: %zu  largest: label %u with %u pages (%.1f%%)\n",
              sizes.size(), largest_label, largest,
              100.0 * largest / snapshot.num_vertices());
  std::printf("CC work: %llu computations (+%llu bypassed) in %llu "
              "supersteps, %.4f s\n",
              static_cast<unsigned long long>(cc.info.stats.computations),
              static_cast<unsigned long long>(cc.info.stats.skipped),
              static_cast<unsigned long long>(cc.info.supersteps),
              cc.info.stats.RuntimeSeconds());

  // Rough width of the graph: multi-probe BFS diameter lower bound.
  slfe::ApproxDiameterResult diameter =
      slfe::RunApproxDiameter(snapshot, config, /*num_probes=*/4);
  std::printf("approximate diameter (lower bound from 4 probes): %u\n",
              diameter.diameter_lower_bound);
  return 0;
}
