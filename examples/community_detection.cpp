// Community detection over a web/folksonomy-style graph: connected
// components via minimum-label propagation, plus an approximate diameter
// probe. Demonstrates the min/max-aggregation path of SLFE's API on an
// all-vertices-seeded application, driven through api::Session — note the
// crawl is registered as-is; the session derives the undirected closure
// cc needs by itself (the descriptor declares needs_symmetric).
//
// Scenario: a crawler wants the weakly connected structure of a crawl
// snapshot (how many islands, how big the core is, roughly how wide).

#include <cstdio>
#include <map>

#include "slfe/api/session.h"
#include "slfe/graph/generators.h"

int main() {
  // Crawl snapshot: sparse power-law graph (directed, as crawled).
  slfe::RmatOptions opt;
  opt.num_vertices = 1 << 15;
  opt.num_edges = 1 << 17;  // sparse: multiple islands survive
  opt.seed = 1234;
  slfe::EdgeList crawl = slfe::GenerateRmat(opt);
  crawl.Deduplicate();
  slfe::Graph snapshot = slfe::Graph::FromEdges(crawl);
  std::printf("crawl snapshot: %u pages, %llu links\n",
              snapshot.num_vertices(),
              static_cast<unsigned long long>(snapshot.num_edges()));

  slfe::api::SessionOptions options;
  options.num_nodes = 4;
  slfe::api::Session session(options);
  if (!session.AddGraph("crawl", std::move(snapshot)).ok()) return 1;

  slfe::api::AppRequest request;
  request.app = "cc";
  request.graph = "crawl";
  request.enable_rr = true;
  slfe::api::AppOutcome cc = session.Run(request);
  if (!cc.status.ok()) {
    std::printf("cc failed: %s\n", cc.status.ToString().c_str());
    return 1;
  }

  // Component census over the per-vertex labels.
  std::map<uint32_t, uint32_t> sizes;
  for (double label : cc.values) ++sizes[static_cast<uint32_t>(label)];
  uint32_t largest = 0, largest_label = 0;
  for (const auto& [label, size] : sizes) {
    if (size > largest) {
      largest = size;
      largest_label = label;
    }
  }
  std::printf("components: %zu  largest: label %u with %u pages (%.1f%%)\n",
              sizes.size(), largest_label, largest,
              100.0 * largest / cc.values.size());
  std::printf("CC work: %llu computations (+%llu bypassed) in %llu "
              "supersteps, %.4f s\n",
              static_cast<unsigned long long>(cc.info.stats.computations),
              static_cast<unsigned long long>(cc.info.stats.skipped),
              static_cast<unsigned long long>(cc.info.supersteps),
              cc.info.stats.RuntimeSeconds());

  // Rough width of the graph: multi-probe BFS diameter lower bound.
  request.app = "diameter";
  request.num_probes = 4;
  slfe::api::AppOutcome diameter = session.Run(request);
  if (!diameter.status.ok()) return 1;
  std::printf("approximate diameter (lower bound from 4 probes): %llu\n",
              static_cast<unsigned long long>(diameter.summary));
  return 0;
}
